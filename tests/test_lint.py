"""Tests for the static-analysis subsystem (`repro lint`).

Covers the self-lint gate (the repo passes its own rules), seeded
violations for every rule against synthetic fixture trees, the
suppression mechanism, the salt-fingerprint acceptance flow on a full
copy of the real package, and the pinned agreement between the static
classifiers and their runtime counterparts.
"""

from __future__ import annotations

import dataclasses
import json
import os
import shutil

import pytest

import repro
from repro.analysis import (LintOptions, rule_names, run_lint)
from repro.analysis.cli import lint_main
from repro.analysis.hooks import policy_verdicts
from repro.analysis.model import LintContext
from repro.core import hookspec, stats
from repro.policies.registry import _REGISTRY as POLICY_REGISTRY

PACKAGE_ROOT = os.path.dirname(os.path.abspath(repro.__file__))


def write_tree(root, files):
    for relpath, content in files.items():
        path = os.path.join(root, *relpath.split("/"))
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(content)
    return root


def findings_by_rule(report, rule):
    return [f for f in report.findings if f.rule == rule]


# ---------------------------------------------------------------------------
# Self-lint: the repo passes its own gate.

def test_self_lint_is_clean():
    report = run_lint(PACKAGE_ROOT)
    rendered = "\n".join(f.render() for f in report.findings)
    assert report.errors == 0, rendered
    assert report.warnings == 0, rendered
    assert report.exit_code() == 0
    assert list(report.rules) == list(rule_names())
    assert report.files_scanned > 50


def test_core_package_carries_no_suppressions():
    core = os.path.join(PACKAGE_ROOT, "core")
    offenders = []
    for dirpath, _dirnames, filenames in os.walk(core):
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            with open(path, "r", encoding="utf-8") as handle:
                if "lint: disable" in handle.read():
                    offenders.append(path)
    assert offenders == []


# ---------------------------------------------------------------------------
# determinism-hazard

DETERMINISM_FIXTURE = {
    "core/bad.py": (
        "import os\n"
        "import random\n"
        "import time\n"
        "\n"
        "\n"
        "def stamp():\n"
        "    return time.time()\n"
        "\n"
        "\n"
        "def pick(items):\n"
        "    return random.choice(items)\n"
        "\n"
        "\n"
        "def seeded(seed, items):\n"
        "    return random.Random(seed).choice(items)\n"
        "\n"
        "\n"
        "def ident(obj):\n"
        "    return id(obj)\n"
        "\n"
        "\n"
        "def walk(path):\n"
        "    return os.listdir(path)\n"
        "\n"
        "\n"
        "def sorted_walk(path):\n"
        "    return sorted(os.listdir(path))\n"
        "\n"
        "\n"
        "def env():\n"
        "    return os.environ.get('KNOB')\n"
    ),
    "sim/runner.py": (
        "import os\n"
        "\n"
        "\n"
        "def spec_default():\n"
        "    return os.environ.get('REPRO_FULL')\n"
    ),
    "experiments/clock.py": (
        "import time\n"
        "\n"
        "\n"
        "def banner():\n"
        "    return time.time()\n"
    ),
}


def test_determinism_rule_flags_hazards(tmp_path):
    root = write_tree(str(tmp_path), DETERMINISM_FIXTURE)
    report = run_lint(root, LintOptions(rules=["determinism-hazard"]))
    found = findings_by_rule(report, "determinism-hazard")
    messages = {(f.path, f.line): f.message for f in found}
    paths = sorted({f.path for f in found})
    assert paths == ["core/bad.py"]
    blurbs = "\n".join(f.render() for f in found)
    assert any("time.time" in m for m in messages.values()), blurbs
    assert any("random.choice" in m for m in messages.values()), blurbs
    assert any("id()" in m for m in messages.values()), blurbs
    assert any("os.listdir" in m for m in messages.values()), blurbs
    assert any("os.environ" in m for m in messages.values()), blurbs
    # Exactly one listdir finding: the sorted() wrapper is accepted.
    assert sum("os.listdir" in m for m in messages.values()) == 1
    # Seeded random.Random streams are accepted (the fixture's
    # seeded() helper on line 15 draws no finding).
    assert not any(f.line == 15 for f in found), blurbs
    # The declared entry point may read the environment.
    assert not any(f.path == "sim/runner.py" for f in found)
    assert report.exit_code() == 1


def test_determinism_rule_scopes_to_simulation_packages(tmp_path):
    root = write_tree(str(tmp_path), DETERMINISM_FIXTURE)
    report = run_lint(root, LintOptions(rules=["determinism-hazard"]))
    assert not any(f.path.startswith("experiments/")
                   for f in report.findings)


def test_suppression_and_unused_suppression(tmp_path):
    files = {
        "core/pruner.py": (
            "import time\n"
            "\n"
            "\n"
            "def age_reference():\n"
            "    return time.time()  # lint: disable=determinism-hazard\n"
            "\n"
            "\n"
            "def innocent():\n"
            "    return 1  # lint: disable=determinism-hazard\n"
        ),
    }
    root = write_tree(str(tmp_path), files)
    report = run_lint(root, LintOptions(rules=["determinism-hazard"]))
    assert report.suppressed == 1
    unused = findings_by_rule(report, "unused-suppression")
    assert len(unused) == 1 and unused[0].line == 9
    assert findings_by_rule(report, "determinism-hazard") == []
    # A suppression naming a rule that did not run is ignored entirely.
    report = run_lint(root, LintOptions(rules=["digest-safety"]))
    assert findings_by_rule(report, "unused-suppression") == []


# ---------------------------------------------------------------------------
# hook-conformance

HOOK_FIXTURE = {
    "policies/base.py": (
        "class FetchPolicy:\n"
        "    def on_cycle(self):\n"
        "        pass\n"
        "\n"
        "    def on_l2_miss_detected(self):\n"
        "        pass\n"
        "\n"
        "    def skip_horizon(self):\n"
        "        pass\n"
        "\n"
        "    def macro_step_ok(self):\n"
        "        return True\n"
    ),
    "policies/derived.py": (
        "from .base import FetchPolicy\n"
        "\n"
        "\n"
        "class BadPolicy(FetchPolicy):\n"
        "    def on_cycle(self):\n"
        "        pass\n"
        "\n"
        "\n"
        "class GoodPolicy(FetchPolicy):\n"
        "    def on_cycle(self):\n"
        "        pass\n"
        "\n"
        "    def skip_horizon(self):\n"
        "        pass\n"
        "\n"
        "    def macro_step_ok(self):\n"
        "        return True\n"
        "\n"
        "\n"
        "class Bystander:\n"
        "    def on_cycle(self):\n"
        "        pass\n"
    ),
}


def test_hook_conformance_rule(tmp_path):
    root = write_tree(str(tmp_path), HOOK_FIXTURE)
    report = run_lint(root, LintOptions(rules=["hook-conformance"]))
    found = findings_by_rule(report, "hook-conformance")
    assert all("BadPolicy" in f.message for f in found), \
        "\n".join(f.render() for f in found)
    assert len(found) == 2   # horizon + macro
    assert {f.path for f in found} == {"policies/derived.py"}


def test_static_and_runtime_hook_verdicts_agree():
    """The lint rule and the pipeline auto-veto share one classifier —
    pin that they reach identical verdicts on every registered policy."""
    ctx = LintContext(PACKAGE_ROOT)
    static = policy_verdicts(ctx)
    for name, policy_class in sorted(POLICY_REGISTRY.items()):
        class_name = policy_class.__name__
        assert class_name in static, \
            f"{class_name} (policy {name!r}) not seen by the lint rule"
        assert static[class_name]["horizon"] == \
            hookspec.horizon_covers_on_cycle(policy_class), class_name
        assert static[class_name]["macro"] == \
            hookspec.macro_covers_policy(policy_class), class_name
    # The agreement is meaningful: every registered policy opts in.
    assert all(v["horizon"] and v["macro"] for v in static.values())


# ---------------------------------------------------------------------------
# hot-path-hygiene

HOT_FIXTURE = {
    "core/hot.py": (
        "class Engine:\n"
        "    def run(self, items):\n"
        "        out = []\n"
        "        for item in items:\n"
        "            try:\n"
        "                out.append(self.table.data[item])\n"
        "            except KeyError:\n"
        "                out.append(0)\n"
        "            fn = lambda x: x + 1\n"
        "            a = self.state.acc.total\n"
        "            b = self.state.acc.total\n"
        "            out.append(fn(a + b))\n"
        "        return out\n"
        "\n"
        "    def clean(self, items):\n"
        "        total = self.state.acc.total\n"
        "        for item in items:\n"
        "            total += item\n"
        "        return total\n"
    ),
}


def test_hot_path_rule_flags_violations(tmp_path):
    root = write_tree(str(tmp_path), HOT_FIXTURE)
    hot_list = [("core/hot.py", "Engine.run"),
                ("core/hot.py", "Engine.clean"),
                ("core/hot.py", "Engine.gone")]
    report = run_lint(root, LintOptions(rules=["hot-path-hygiene"],
                                        hot_list=hot_list))
    found = findings_by_rule(report, "hot-path-hygiene")
    blurbs = "\n".join(f.render() for f in found)
    assert sum("try block" in f.message for f in found) == 1, blurbs
    assert sum("closure" in f.message for f in found) == 1, blurbs
    assert sum("self.state.acc.total" in f.message
               for f in found) == 1, blurbs
    assert sum("'Engine.gone' not found" in f.message
               for f in found) == 1, blurbs
    # The hoisted-before-the-loop pattern in `clean` is accepted.
    assert not any("Engine.clean" in f.message for f in found), blurbs
    assert len(found) == 4, blurbs


def test_hot_list_defaults_resolve_on_real_tree():
    """Every default hot-list entry must name a real function — a rename
    shows up as a lint error, not a silently skipped check."""
    report = run_lint(PACKAGE_ROOT,
                      LintOptions(rules=["hot-path-hygiene"]))
    assert report.findings == [], \
        "\n".join(f.render() for f in report.findings)


# ---------------------------------------------------------------------------
# digest-safety

def _digest_fixture(thread_fields, global_fields, digest_tuple,
                    diag_tuple):
    body = ["import dataclasses", "", "",
            f"THREAD_DIGEST_FIELDS = {digest_tuple!r}", "",
            f"DIGEST_SAFE_DIAGNOSTICS = {diag_tuple!r}", "", ""]
    for class_name, fields in (("ThreadStats", thread_fields),
                               ("GlobalStats", global_fields)):
        body.append("@dataclasses.dataclass")
        body.append(f"class {class_name}:")
        for field in fields:
            body.append(f"    {field}: int = 0")
        body.append("")
        body.append("")
    return {"core/stats.py": "\n".join(body)}


def test_digest_rule_flags_unclassified_and_stale(tmp_path):
    files = _digest_fixture(
        thread_fields=("committed", "fetched"),
        global_fields=("cycles",),
        digest_tuple=("committed", "ghost"),
        diag_tuple=("cycles",))
    root = write_tree(str(tmp_path), files)
    report = run_lint(root, LintOptions(rules=["digest-safety"]))
    found = findings_by_rule(report, "digest-safety")
    blurbs = "\n".join(f.render() for f in found)
    assert sum("ThreadStats.fetched is not classified" in f.message
               for f in found) == 1, blurbs
    assert sum("'ghost'" in f.message for f in found) == 1, blurbs
    assert len(found) == 2, blurbs


def test_digest_rule_accepts_complete_classification(tmp_path):
    files = _digest_fixture(
        thread_fields=("committed", "fetched"),
        global_fields=("cycles", "committed"),
        digest_tuple=("committed", "fetched"),
        diag_tuple=("cycles", "committed"))
    root = write_tree(str(tmp_path), files)
    report = run_lint(root, LintOptions(rules=["digest-safety"]))
    assert findings_by_rule(report, "digest-safety") == []


def test_digest_declarations_agree_with_runtime_dataclasses():
    thread_fields = {f.name for f in dataclasses.fields(stats.ThreadStats)}
    global_fields = {f.name for f in dataclasses.fields(stats.GlobalStats)}
    assert set(stats.THREAD_DIGEST_FIELDS) == thread_fields
    assert set(stats.DIGEST_SAFE_DIAGNOSTICS) == global_fields
    # The declarations also pin the serialization surface: to_dict()
    # must expose exactly the digest-participating slots.
    assert set(stats.ThreadStats().to_dict()) == \
        set(stats.THREAD_DIGEST_FIELDS)


# ---------------------------------------------------------------------------
# salt-fingerprint (acceptance-criterion flow on a real-tree copy)

@pytest.fixture()
def package_copy(tmp_path):
    copy_root = str(tmp_path / "repro")
    shutil.copytree(PACKAGE_ROOT, copy_root,
                    ignore=shutil.ignore_patterns("__pycache__"))
    return copy_root


def _edit(root, relpath, old, new):
    path = os.path.join(root, *relpath.split("/"))
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    assert old in text, f"{old!r} not found in {relpath}"
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text.replace(old, new, 1))


def test_fingerprint_rule_clean_on_unmodified_copy(package_copy):
    report = run_lint(package_copy,
                      LintOptions(rules=["salt-fingerprint"]))
    assert report.findings == [], \
        "\n".join(f.render() for f in report.findings)


def test_semantic_edit_requires_salt_bump_or_repin(package_copy):
    # The acceptance-criterion edit: reorder the canonical-encoding
    # keys of the cache_key payload in the copy's sim/store.py.
    _edit(package_copy, "sim/store.py",
          '        "workload": workload.to_dict(),\n'
          '        "policy": policy,\n',
          '        "policy": policy,\n'
          '        "workload": workload.to_dict(),\n')
    options = LintOptions(rules=["salt-fingerprint"])
    report = run_lint(package_copy, options)
    found = findings_by_rule(report, "salt-fingerprint")
    assert len(found) == 1 and found[0].path == "sim/store.py", \
        "\n".join(f.render() for f in report.findings)
    assert found[0].severity == "error"
    assert "CODE_VERSION_SALT" in found[0].message
    assert report.exit_code() == 1

    # Bumping the governing salt resolves the error (leaving only the
    # re-pin reminder warning), exactly as the salt policy demands.
    _edit(package_copy, "sim/store.py",
          'CODE_VERSION_SALT = "sim-engine-v2"',
          'CODE_VERSION_SALT = "sim-engine-v3"')
    report = run_lint(package_copy, options)
    assert report.errors == 0, \
        "\n".join(f.render() for f in report.findings)
    assert report.warnings == 1
    assert "accept-fingerprints" in report.findings[0].message
    assert report.exit_code() == 0

    # --accept-fingerprints re-pins; the next run is fully clean.
    accept = LintOptions(rules=["salt-fingerprint"],
                         accept_fingerprints=True)
    report = run_lint(package_copy, accept)
    assert report.findings == [] and report.repinned is not None
    assert report.repinned["salts"]["code"] == "sim-engine-v3"
    report = run_lint(package_copy, options)
    assert report.findings == []


def test_repin_alone_accepts_verified_refactor(package_copy):
    _edit(package_copy, "sim/store.py",
          '        "workload": workload.to_dict(),\n'
          '        "policy": policy,\n',
          '        "policy": policy,\n'
          '        "workload": workload.to_dict(),\n')
    report = run_lint(package_copy,
                      LintOptions(rules=["salt-fingerprint"],
                                  accept_fingerprints=True))
    assert report.findings == [] and report.repinned is not None
    report = run_lint(package_copy,
                      LintOptions(rules=["salt-fingerprint"]))
    assert report.findings == []


def test_render_scope_accepts_exhibit_version_bump(package_copy):
    # A change confined to one exhibit may bump that exhibit's
    # class-level `version` instead of the global render salt; the
    # declaration itself is the semantic edit here.
    _edit(package_copy, "experiments/table1.py",
          'class Table1(Exhibit):\n',
          'class Table1(Exhibit):\n    version = 2\n')
    report = run_lint(package_copy,
                      LintOptions(rules=["salt-fingerprint"]))
    assert report.findings == [], \
        "\n".join(f.render() for f in report.findings)
    # The same edit without the version bump is an error.
    _edit(package_copy, "experiments/table1.py",
          "    version = 2\n", "    extra_attribute = 2\n")
    report = run_lint(package_copy,
                      LintOptions(rules=["salt-fingerprint"]))
    found = findings_by_rule(report, "salt-fingerprint")
    assert len(found) == 1 and found[0].path == "experiments/table1.py"
    assert "EXHIBIT_RENDER_SALT" in found[0].message


def test_new_salt_scoped_module_must_be_pinned(package_copy):
    write_tree(package_copy, {"core/extra.py": "VALUE = 1\n"})
    report = run_lint(package_copy,
                      LintOptions(rules=["salt-fingerprint"]))
    found = findings_by_rule(report, "salt-fingerprint")
    assert len(found) == 1 and found[0].path == "core/extra.py"
    assert "not pinned" in found[0].message


def test_docstring_and_comment_edits_do_not_drift(package_copy):
    _edit(package_copy, "core/stats.py",
          "Simulation statistics.",
          "Simulation statistics (reworded).")
    _edit(package_copy, "mem/cache.py", "\"\"\"", "\"\"\"  \n", )
    report = run_lint(package_copy,
                      LintOptions(rules=["salt-fingerprint"]))
    assert report.findings == [], \
        "\n".join(f.render() for f in report.findings)


def test_missing_baseline_is_an_error(tmp_path, package_copy):
    options = LintOptions(
        rules=["salt-fingerprint"],
        fingerprints_path=str(tmp_path / "nowhere.json"))
    report = run_lint(package_copy, options)
    found = findings_by_rule(report, "salt-fingerprint")
    assert len(found) == 1
    assert "no readable fingerprint baseline" in found[0].message
    assert report.exit_code() == 1


# ---------------------------------------------------------------------------
# CLI

def test_cli_json_document_shape(capsys):
    exit_code = lint_main(["--format", "json"])
    assert exit_code == 0
    document = json.loads(capsys.readouterr().out)
    assert document["version"] == 1
    assert set(document) >= {"version", "root", "rules", "files",
                             "findings", "summary"}
    summary = document["summary"]
    assert summary["errors"] == 0 and summary["warnings"] == 0
    assert isinstance(summary["suppressed"], int)
    # Per-rule execution stats: every rule that ran reports a finding
    # count and a wall time.
    assert set(summary["rules"]) == set(rule_names())
    for stats in summary["rules"].values():
        assert isinstance(stats["findings"], int)
        assert isinstance(stats["seconds"], float)
    # Fragment coverage rides along whenever tier-sync ran.
    assert summary["fragment_coverage"]["fragments"] >= 6
    assert document["rules"] == list(rule_names())
    assert document["findings"] == []


def test_cli_exit_codes(tmp_path, capsys):
    root = write_tree(str(tmp_path), DETERMINISM_FIXTURE)
    assert lint_main(["--root", root,
                      "--rules", "determinism-hazard"]) == 1
    out = capsys.readouterr().out
    assert "determinism-hazard" in out and "error" in out
    assert lint_main(["--rules", "no-such-rule"]) == 2
    assert lint_main(["--list-rules"]) == 0
    listed = capsys.readouterr().out
    for name in rule_names():
        assert name in listed


def test_cli_accept_fingerprints_round_trip(package_copy, capsys):
    pins = os.path.join(package_copy, "analysis", "fingerprints.json")
    os.unlink(pins)
    assert lint_main(["--root", package_copy,
                      "--rules", "salt-fingerprint"]) == 1
    capsys.readouterr()
    assert lint_main(["--root", package_copy,
                      "--rules", "salt-fingerprint",
                      "--accept-fingerprints"]) == 0
    out = capsys.readouterr().out
    assert "re-pinned" in out
    assert os.path.exists(pins)
    assert lint_main(["--root", package_copy,
                      "--rules", "salt-fingerprint"]) == 0
