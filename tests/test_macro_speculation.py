"""Macro-step speculation: on-vs-off bit-identity fuzz + guard edges.

The macro-step layer (see :meth:`SMTPipeline._macro_dispatch`) promises
bit-identity *by construction*: every entry guard is checked before any
machine state is touched, and the fused loop's net per-instruction side
effects mirror the per-stage path exactly.  This suite is the promise's
enforcement:

* a seeded fuzz matrix (1/2/4 threads x all registered policies,
  mirroring ``tests/test_advance_equivalence.py``) compares the full
  canonical ``SimResult.to_dict()`` with speculation forced on vs off;
* targeted edge tests pin the guard/abort seams — a mispredicted branch
  redirect landing mid-run, MSHR-full load requeues inside a fused run,
  and runahead entry/exit falling on a run boundary — each with its
  premise asserted so a regressed workload cannot silently hollow the
  test out;
* the compiled JIT tier is forced (threshold patched to 1) so its
  specialized handlers are exercised even at test-sized pass counts.
"""

from __future__ import annotations

import random

import pytest

import repro.core.pipeline as pipeline_mod
from repro.config import SPECULATE_ENV_VAR, baseline, speculation_mode
from repro.core.processor import SMTProcessor
from repro.errors import ConfigError
from repro.policies.registry import policy_names
from repro.trace.generator import generate_trace
from repro.trace.profiles import ilp_benchmarks, mem_benchmarks

#: Seeded deterministically; change the seed only with a reason.
_RNG_SEED = 20260806

THREAD_COUNTS = (1, 2, 4)


def _random_cells():
    """One (threads, policy, benchmarks, trace_len, seed) cell per
    (thread count, policy) pair, drawn from a fixed-seed RNG."""
    rng = random.Random(_RNG_SEED)
    mem = list(mem_benchmarks())
    ilp = list(ilp_benchmarks())
    cells = []
    for threads in THREAD_COUNTS:
        for policy in policy_names():
            # First slot MEM-class so runahead/MSHR machinery engages.
            names = [rng.choice(mem)]
            names += [rng.choice(mem + ilp) for _ in range(threads - 1)]
            trace_len = rng.randrange(200, 401, 50)
            seed = rng.randrange(1, 1000)
            cells.append((threads, policy, tuple(names), trace_len, seed))
    return cells


CELLS = _random_cells()


def _run(policy, benchmarks, trace_len, seed, speculate,
         **config_overrides):
    traces = [generate_trace(name, trace_len, seed)
              for name in benchmarks]
    config = baseline().with_policy(policy, **config_overrides)
    processor = SMTProcessor(config, traces)
    # Force the layer on/off directly (the 'on'/'off' env modes); the
    # fuzz must cover opaque policies too, which 'auto' would veto.
    processor.pipeline.macro_spec = speculate
    result = processor.run(min_passes=1, max_cycles=200_000)
    return result, processor.pipeline


@pytest.mark.parametrize(
    "threads,policy,benchmarks,trace_len,seed", CELLS,
    ids=[f"{t}x-{p}-{'+'.join(b)}-len{n}-s{s}"
         for t, p, b, n, s in CELLS])
def test_speculation_on_matches_off(threads, policy, benchmarks,
                                    trace_len, seed):
    plain, _ = _run(policy, benchmarks, trace_len, seed, False)
    fused, pipeline = _run(policy, benchmarks, trace_len, seed, True)
    assert fused.to_dict() == plain.to_dict(), (
        f"speculation divergence: {threads} threads, policy {policy}, "
        f"workload {benchmarks}, trace_len {trace_len}, seed {seed} "
        f"({pipeline.gstats.macro_insts} insts in "
        f"{pipeline.gstats.macro_steps} macro-steps, aborts "
        f"{pipeline.gstats.macro_abort_causes})")


def test_fuzz_matrix_actually_speculates():
    """Premise guard for the whole matrix: the fused path must really
    run somewhere, or the fuzz proves nothing."""
    total_steps = 0
    for _threads, policy, benchmarks, trace_len, seed in CELLS[:8]:
        _, pipeline = _run(policy, benchmarks, trace_len, seed, True)
        total_steps += pipeline.gstats.macro_steps
    assert total_steps > 0, (
        "no cell of the fuzz matrix ever took a macro step; the "
        "speculation layer is not being exercised")


# --- guard/abort edge cases -------------------------------------------------


def _identical(policy, benchmarks, trace_len, seed, **overrides):
    """Run one cell both ways; return the speculating pipeline."""
    plain, _ = _run(policy, benchmarks, trace_len, seed, False,
                    **overrides)
    fused, pipeline = _run(policy, benchmarks, trace_len, seed, True,
                           **overrides)
    assert fused.to_dict() == plain.to_dict()
    return pipeline


def test_mispredicted_branch_mid_run():
    """A mispredict redirect squashes the fetch queue between macro
    runs; the desync/entry guards must keep every later run coherent."""
    pipeline = _identical("icount", ("art", "mcf"), 400, 11)
    predictor = pipeline.predictor
    assert predictor.mispredictions > 0, (
        "test premise broken: no branch ever mispredicted; pick "
        "another workload/seed")
    assert pipeline.gstats.macro_steps > 0, (
        "test premise broken: no macro step ran alongside the "
        "mispredicts")


def test_mshr_full_requeue_inside_macro_run():
    """A tiny MSHR file forces load reject/requeue windows while fused
    runs keep dispatching into the LS queue."""
    pipeline = _identical("rat", ("art", "mcf"), 400, 7,
                          mshr_entries=2)
    assert pipeline.mem.mshr.rejects > 0, (
        "test premise broken: no load was ever rejected; shrink "
        "mshr_entries further")
    assert pipeline.gstats.macro_steps > 0


def test_runahead_entry_exit_on_run_boundary():
    """Runahead entry (at commit) and exit (checkpoint restore) bracket
    fused runs; the mode flip must not leak between the demand tables
    (normal vs runahead) of adjacent runs."""
    pipeline = _identical("rat", ("mcf", "art"), 400, 3)
    episodes = sum(thread.stats.runahead_episodes
                   for thread in pipeline.threads)
    assert episodes > 0, (
        "test premise broken: no runahead episode; pick a longer or "
        "more memory-bound workload")
    assert pipeline.gstats.macro_steps > 0


def test_jit_tier_forced(monkeypatch):
    """Threshold 1 compiles every full-length hot plan, so the
    specialized handlers (not just the generic fused loop) are what
    must match the per-stage path."""
    monkeypatch.setattr(pipeline_mod, "_JIT_THRESHOLD", 1)
    pipeline = _identical("rat", ("art", "mcf"), 400, 7)
    compiled = sum(
        1
        for thread in pipeline.threads
        for plan in thread.macro_plans.values()
        if plan is not None
        and (plan.jit_normal is not None
             or plan.jit_runahead is not None))
    assert compiled > 0, (
        "test premise broken: threshold 1 compiled no handler; did "
        "the JIT tier's trigger move?")


def test_truncated_runs_dispatch_partially():
    """Resource-squeezed guards shrink a run to the covered prefix
    instead of aborting it outright (and stay bit-identical)."""
    # A small ROB/IQ keeps headroom chronically below full run length.
    pipeline = _identical("rat", ("art", "mcf"), 400, 7,
                          rob_size=24, ls_iq_size=6)
    assert pipeline.gstats.macro_steps > 0


def test_prefix_jit_tier_forced(monkeypatch):
    """Threshold 1 compiles truncated-prefix handlers: the chronically
    squeezed machine of the previous test re-runs the same plan at the
    same shortened length often enough that the per-(plan, length)
    counter fires, and the compiled prefix handlers must stay
    bit-identical with the per-stage path."""
    monkeypatch.setattr(pipeline_mod, "_PREFIX_JIT_THRESHOLD", 1)
    pipeline = _identical("rat", ("art", "mcf"), 400, 7,
                          rob_size=24, ls_iq_size=6)
    compiled = sum(
        len(plan.jit_prefix)
        for thread in pipeline.threads
        for plan in thread.macro_plans.values()
        if plan is not None)
    assert compiled > 0, (
        "test premise broken: threshold 1 compiled no prefix handler; "
        "did the truncated-dispatch trigger move?")


# --- the environment knob ---------------------------------------------------


def test_speculation_mode_env_values(monkeypatch):
    monkeypatch.delenv(SPECULATE_ENV_VAR, raising=False)
    assert speculation_mode() == "auto"
    for value in ("on", "off", "auto", " ON "):
        monkeypatch.setenv(SPECULATE_ENV_VAR, value)
        assert speculation_mode() == value.strip().lower()
    monkeypatch.setenv(SPECULATE_ENV_VAR, "sometimes")
    with pytest.raises(ConfigError):
        speculation_mode()


def test_cli_speculate_flag_sets_env(monkeypatch):
    import os

    from repro.cli import _apply_speculate, build_parser
    monkeypatch.delenv(SPECULATE_ENV_VAR, raising=False)
    args = build_parser().parse_args(["table1", "--speculate", "off"])
    _apply_speculate(args)
    assert os.environ[SPECULATE_ENV_VAR] == "off"
    # absent flag leaves the environment alone
    monkeypatch.delenv(SPECULATE_ENV_VAR, raising=False)
    _apply_speculate(build_parser().parse_args(["table1"]))
    assert SPECULATE_ENV_VAR not in os.environ


def test_env_off_disables_layer(monkeypatch):
    monkeypatch.setenv(SPECULATE_ENV_VAR, "off")
    traces = [generate_trace("mcf", 200, 1)]
    processor = SMTProcessor(baseline().with_policy("rat"), traces)
    assert processor.pipeline.macro_spec is False
    processor.run(min_passes=1, max_cycles=200_000)
    assert processor.pipeline.gstats.macro_steps == 0
