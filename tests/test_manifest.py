"""Campaign manifests: JSON round trip, sharding, render keys.

The manifest is the serializable *plan* stage of the
plan -> execute -> assemble dataflow (ISSUE 5): planning must be a pure
function of (exhibits, context); the JSON form must round-trip exactly;
the K/N shard filter must partition the entries deterministically; and
the per-exhibit render keys must move whenever the assembled output
could.
"""

import dataclasses
import json

import pytest

from repro.errors import ManifestError
from repro.experiments import Campaign, ExhibitContext
from repro.experiments.registry import get_exhibit
from repro.sim.engine import SimEngine
from repro.sim.executors import ShardSpec
from repro.sim.manifest import (MANIFEST_SCHEMA, CampaignManifest,
                                exhibit_render_key)
from repro.sim.runner import RunSpec

TINY = RunSpec(trace_len=200, seed=3, max_cycles=200_000)
CTX = ExhibitContext.make(spec=TINY, classes=("MEM2",),
                          workloads_per_class=1)


@pytest.fixture(scope="module")
def manifest():
    return Campaign(["figure1", "figure3"], ctx=CTX,
                    engine=SimEngine()).plan()


class TestManifestShape:
    def test_sequence_of_cells(self, manifest):
        cells = manifest.cells()
        assert len(manifest) == len(cells) > 0
        assert list(manifest) == cells
        assert manifest[0] == cells[0]
        assert manifest[1:3] == cells[1:3]

    def test_entries_are_deduplicated_and_keyed(self, manifest):
        keys = manifest.keys()
        assert len(set(keys)) == len(keys)
        for entry in manifest.entries:
            assert entry.key == entry.cell.key()
            assert entry.exhibits  # every cell has at least one owner

    def test_cost_ordering_matches_engine_submission(self, manifest):
        costs = [entry.cost for entry in manifest.entries]
        assert costs == sorted(costs, reverse=True)

    def test_exhibit_views(self, manifest):
        plan = manifest.exhibit_plan("figure1")
        assert plan.cell_keys == tuple(sorted(plan.cell_keys))
        cells = manifest.exhibit_cells("figure1")
        assert {cell.key() for cell in cells} == set(plan.cell_keys)
        with pytest.raises(ManifestError):
            manifest.exhibit_plan("figure9")

    def test_planning_is_deterministic(self):
        first = Campaign(["figure1", "figure3"], ctx=CTX,
                         engine=SimEngine()).plan()
        second = Campaign(["figure1", "figure3"], ctx=CTX,
                          engine=SimEngine()).plan()
        assert first.to_json() == second.to_json()


class TestJsonRoundTrip:
    def test_round_trips_byte_identically(self, manifest):
        text = manifest.to_json()
        clone = CampaignManifest.from_json(text)
        assert clone.to_json() == text
        assert clone.keys() == manifest.keys()
        assert [entry.cell for entry in clone.entries] == \
            [entry.cell for entry in manifest.entries]

    def test_schema_is_stamped(self, manifest):
        assert json.loads(manifest.to_json())["schema"] == MANIFEST_SCHEMA

    def test_rejects_garbage(self):
        with pytest.raises(ManifestError):
            CampaignManifest.from_json("{not json")
        with pytest.raises(ManifestError):
            CampaignManifest.from_json("[1, 2]")
        with pytest.raises(ManifestError):
            CampaignManifest.from_json('{"schema": "other"}')

    def test_rejects_foreign_salt(self, manifest):
        data = json.loads(manifest.to_json())
        data["salt"] = "sim-engine-v0"
        with pytest.raises(ManifestError, match="salt"):
            CampaignManifest.from_dict(data)

    def test_rejects_tampered_entry(self, manifest):
        # An edited cell no longer hashes to its recorded key: the
        # manifest must fail loudly instead of executing the wrong cell.
        data = json.loads(manifest.to_json())
        data["cells"][0]["spec"]["trace_len"] += 1
        with pytest.raises(ManifestError, match="stale"):
            CampaignManifest.from_dict(data)


class TestSharding:
    @pytest.mark.parametrize("count", [2, 3, 5])
    def test_shards_partition_the_manifest(self, manifest, count):
        slices = [manifest.filter_shard(ShardSpec(k, count))
                  for k in range(1, count + 1)]
        keys = [key for piece in slices for key in piece.keys()]
        assert sorted(keys) == sorted(manifest.keys())  # disjoint union

    def test_shard_is_recorded_and_final(self, manifest):
        piece = manifest.filter_shard(ShardSpec(1, 2))
        assert piece.shard == "1/2"
        assert json.loads(piece.to_json())["shard"] == "1/2"
        with pytest.raises(ManifestError):
            piece.filter_shard(ShardSpec(1, 2))

    def test_single_shard_is_the_whole_campaign(self, manifest):
        assert manifest.filter_shard(ShardSpec(1, 1)).keys() == \
            manifest.keys()

    def test_shard_round_trips(self, manifest):
        piece = manifest.filter_shard(ShardSpec(2, 3))
        clone = CampaignManifest.from_json(piece.to_json())
        assert clone.keys() == piece.keys()
        assert clone.shard == "2/3"


class TestRenderKeys:
    def test_class_order_changes_render_key(self):
        # Reordering --classes keeps the same cell set but permutes
        # every table's columns — the render key must move.
        spec = RunSpec(trace_len=200, seed=3, max_cycles=200_000)
        forward = ExhibitContext.make(spec=spec,
                                      classes=("MEM2", "ILP2"),
                                      workloads_per_class=1)
        backward = ExhibitContext.make(spec=spec,
                                       classes=("ILP2", "MEM2"),
                                       workloads_per_class=1)
        first = Campaign(["figure1"], ctx=forward,
                         engine=SimEngine()).plan()
        second = Campaign(["figure1"], ctx=backward,
                          engine=SimEngine()).plan()
        assert sorted(first.keys()) == sorted(second.keys())
        assert first.exhibit_plan("figure1").render_key != \
            second.exhibit_plan("figure1").render_key

    def test_version_bump_changes_render_key(self, manifest):
        plan = manifest.exhibit_plan("figure1")
        bumped = exhibit_render_key("figure1", plan.version + 1,
                                    plan.cell_keys, manifest.context)
        assert bumped != plan.render_key

    def test_cell_set_changes_render_key(self, manifest):
        plan = manifest.exhibit_plan("figure1")
        fewer = exhibit_render_key("figure1", plan.version,
                                   plan.cell_keys[:-1], manifest.context)
        assert fewer != plan.render_key

    def test_exhibit_version_attribute_feeds_plan(self):
        exhibit = get_exhibit("figure1")
        original = exhibit.version
        try:
            type(exhibit).version = original + 1
            bumped = Campaign(["figure1"], ctx=CTX,
                              engine=SimEngine()).plan()
        finally:
            type(exhibit).version = original
        base = Campaign(["figure1"], ctx=CTX, engine=SimEngine()).plan()
        assert bumped.exhibit_plan("figure1").render_key != \
            base.exhibit_plan("figure1").render_key
        assert bumped.keys() == base.keys()  # cells are untouched


class TestShardSpec:
    def test_parse(self):
        spec = ShardSpec.parse("2/4")
        assert (spec.index, spec.count) == (2, 4)
        assert str(spec) == "2/4"

    @pytest.mark.parametrize("text", ["", "3", "0/4", "5/4", "a/b",
                                      "1/0", "-1/3"])
    def test_parse_rejects(self, text):
        with pytest.raises(ManifestError):
            ShardSpec.parse(text)

    def test_assignment_is_deterministic_and_total(self):
        keys = [f"{value:064x}" for value in range(0, 7_000_000, 13_337)]
        for count in (1, 2, 3, 7):
            shards = [ShardSpec(k, count) for k in range(1, count + 1)]
            for key in keys:
                owners = [shard for shard in shards if shard.owns(key)]
                assert len(owners) == 1  # exactly one shard owns any key

    def test_frozen_manifest_entries(self, manifest):
        with pytest.raises(dataclasses.FrozenInstanceError):
            manifest.entries[0].key = "x"
