"""Tests for the evaluation metrics (paper §5 equations)."""

import pytest

from repro.metrics import ed2, fairness, throughput
from repro.metrics.energy import normalized_ed2
from repro.metrics.fairness import hmean_speedup
from repro.metrics.ipc import weighted_speedup


class TestThroughput:
    def test_equation_1_is_mean(self):
        assert throughput([2.0, 1.0]) == pytest.approx(1.5)

    def test_single_thread(self):
        assert throughput([0.7]) == pytest.approx(0.7)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            throughput([])


class TestFairness:
    def test_equation_2_harmonic_mean(self):
        # Thread speedups 0.5 and 0.5 -> harmonic mean 0.5.
        assert fairness([1.0, 2.0], [2.0, 4.0]) == pytest.approx(0.5)

    def test_unbalanced_speedups_punished(self):
        balanced = fairness([1.0, 1.0], [2.0, 2.0])
        skewed = fairness([1.9, 0.1], [2.0, 2.0])
        assert skewed < balanced

    def test_perfect_isolation_is_one(self):
        assert fairness([2.0, 3.0], [2.0, 3.0]) == pytest.approx(1.0)

    def test_zero_mt_ipc_gives_zero(self):
        assert fairness([0.0, 1.0], [1.0, 1.0]) == 0.0

    def test_rejects_nonpositive_reference(self):
        with pytest.raises(ValueError):
            fairness([1.0], [0.0])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            fairness([1.0, 2.0], [1.0])

    def test_alias(self):
        assert fairness is hmean_speedup


class TestWeightedSpeedup:
    def test_mean_of_ratios(self):
        assert weighted_speedup([1.0, 1.0], [2.0, 4.0]) == pytest.approx(
            (0.5 + 0.25) / 2)

    def test_rejects_zero_reference(self):
        with pytest.raises(ValueError):
            weighted_speedup([1.0], [0.0])


class TestED2:
    def test_formula(self):
        assert ed2(1000, 2.0) == pytest.approx(4000.0)

    def test_normalization(self):
        assert normalized_ed2(1000, 2.0, 1000, 2.0) == pytest.approx(1.0)
        assert normalized_ed2(500, 2.0, 1000, 2.0) == pytest.approx(0.5)

    def test_quadratic_in_delay(self):
        assert ed2(100, 4.0) == pytest.approx(4 * ed2(100, 2.0))

    def test_rejects_negative_instructions(self):
        with pytest.raises(ValueError):
            ed2(-1, 1.0)

    def test_rejects_nonpositive_cpi(self):
        with pytest.raises(ValueError):
            ed2(100, 0.0)
