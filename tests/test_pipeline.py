"""Pipeline behaviour tests on hand-built traces."""

import pytest

from repro.core.dyninst import InstState
from repro.errors import SimulationError
from repro.isa import OpClass

from repro.testing import SMALL_CONFIG, TraceBuilder, make_processor


class TestBasicExecution:
    def test_straightline_alu_completes(self):
        trace = TraceBuilder().nops(20).build()
        cpu = make_processor([trace])
        result = cpu.run()
        # FAME loops traces: at least one full pass commits.
        assert result.thread_stats[0].committed >= 20
        assert not result.truncated
        cpu.pipeline.check_invariants()

    def test_ipc_above_one_for_independent_alu(self):
        trace = TraceBuilder().nops(200).build()
        result = make_processor([trace]).run()
        assert result.ipcs[0] > 1.0

    def test_dependent_chain_serializes(self):
        builder = TraceBuilder()
        builder.ialu(1)
        for _ in range(99):
            builder.ialu(1, src1=1)
        chained = make_processor([builder.build()]).run()

        independent = make_processor([TraceBuilder().nops(100).build()]).run()
        assert chained.cycles > independent.cycles

    def test_commits_in_trace_order(self):
        trace = (TraceBuilder().ialu(1).load(2, 0x100).ialu(3, src1=2)
                 .store(0x200, src1=1, src2=3).build())
        cpu = make_processor([trace])
        result = cpu.run()
        assert result.thread_stats[0].committed >= 4

    def test_passes_counted(self):
        trace = TraceBuilder().nops(10).build()
        cpu = make_processor([trace])
        result = cpu.run(min_passes=3)
        assert result.thread_stats[0].passes >= 3

    def test_multithread_shares_machine(self):
        traces = [TraceBuilder(name=f"t{i}").nops(50).build()
                  for i in range(2)]
        cpu = make_processor(traces)
        result = cpu.run()
        assert all(stats.committed >= 50 for stats in result.thread_stats)
        cpu.pipeline.check_invariants()

    def test_too_many_threads_rejected(self):
        traces = [TraceBuilder(name=f"t{i}").nops(5).build()
                  for i in range(4)]
        with pytest.raises(SimulationError):
            make_processor(traces)  # 96 regs: only 2 contexts fit

    def test_truncation_flag(self):
        trace = TraceBuilder().nops(1000).build()
        cpu = make_processor([trace])
        result = cpu.run(max_cycles=10)
        assert result.truncated


class TestMemoryBehaviour:
    def test_cold_load_takes_memory_latency(self):
        trace = TraceBuilder().load(2, 0x4000).build()
        cpu = make_processor([trace])
        result = cpu.run()
        full_miss = (SMALL_CONFIG.dcache.latency + SMALL_CONFIG.l2.latency
                     + SMALL_CONFIG.memory_latency)
        assert result.cycles >= full_miss

    def test_warm_load_is_fast(self):
        trace = TraceBuilder().load(2, 0x4000).build()
        cpu = make_processor([trace])
        cpu.pipeline.mem.warm_data(
            cpu.pipeline.threads[0].physical_addr(0x4000, 0))
        result = cpu.run()
        assert result.cycles < 30

    def test_store_writes_at_commit(self):
        trace = TraceBuilder().store(0x5000).nops(5).build()
        cpu = make_processor([trace])
        cpu.run()
        line = cpu.pipeline.mem.dcache.line_of(
            cpu.pipeline.threads[0].physical_addr(0x5000, 0))
        assert cpu.pipeline.mem.dcache.contains(line)

    def test_independent_misses_overlap(self):
        # Two independent loads to distinct lines should overlap their
        # memory latency (MLP), not serialize.
        builder = TraceBuilder()
        builder.load(2, 0x4000)
        builder.load(3, 0x8000)
        cpu = make_processor([builder.build()])
        result = cpu.run()
        full_miss = (SMALL_CONFIG.dcache.latency + SMALL_CONFIG.l2.latency
                     + SMALL_CONFIG.memory_latency)
        assert result.cycles < 2 * full_miss - 20

    def test_dependent_misses_serialize(self):
        builder = TraceBuilder()
        builder.load(2, 0x4000)
        builder.load(3, 0x8000, src1=2)  # address depends on first load
        cpu = make_processor([builder.build()])
        result = cpu.run()
        full_miss = (SMALL_CONFIG.dcache.latency + SMALL_CONFIG.l2.latency
                     + SMALL_CONFIG.memory_latency)
        assert result.cycles > 2 * full_miss - 20


class TestBranchHandling:
    def test_biased_branches_predicted_after_training(self):
        builder = TraceBuilder()
        for _ in range(40):
            builder.ialu(1)
            builder.branch(taken=False)
        cpu = make_processor([builder.build()])
        result = cpu.run(min_passes=3)
        stats = result.thread_stats[0]
        assert stats.mispredicts < stats.branches * 0.2

    def test_misprediction_squashes_and_recovers(self):
        # An alternating branch with tiny history is hard; we only check
        # correctness: everything still commits exactly once per pass.
        builder = TraceBuilder()
        for index in range(30):
            builder.ialu(1)
            builder.branch(taken=bool(index % 2))
        cpu = make_processor([builder.build()])
        result = cpu.run()
        assert result.thread_stats[0].committed >= 60
        cpu.pipeline.check_invariants()

    def test_squashed_work_counted(self):
        builder = TraceBuilder()
        for index in range(50):
            builder.nops(3)
            builder.branch(taken=(index * 7) % 3 == 0)
        cpu = make_processor([builder.build()])
        result = cpu.run()
        stats = result.thread_stats[0]
        if stats.mispredicts:
            assert stats.squashed > 0

    def test_fetch_stops_at_taken_branch(self):
        builder = TraceBuilder()
        for _ in range(10):
            builder.branch(taken=True)
        cpu = make_processor([builder.build()])
        cpu.step(2)
        # Only one taken branch can be fetched per cycle per thread.
        assert cpu.pipeline.threads[0].stats.fetched <= 2


class TestSyncOps:
    def test_sync_executes_in_normal_mode(self):
        trace = TraceBuilder().sync().nops(3).build()
        result = make_processor([trace]).run()
        assert result.thread_stats[0].committed >= 4


class TestInvariantsDuringExecution:
    def test_invariants_hold_every_10_cycles(self):
        builder = TraceBuilder()
        for index in range(60):
            if index % 7 == 3:
                builder.load(2 + index % 4, 0x1000 * index)
            elif index % 11 == 5:
                builder.branch(taken=index % 2 == 0)
            else:
                builder.ialu(1 + index % 6, src1=1 + (index + 1) % 6)
        cpu = make_processor([builder.build()], policy="rat")
        for _ in range(80):
            cpu.step(10)
            cpu.pipeline.check_invariants()
            if all(t.finished_passes for t in cpu.pipeline.threads):
                break
