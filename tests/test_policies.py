"""Tests for fetch and resource-control policies."""

import pytest

from repro.errors import UnknownPolicyError
from repro.policies import (
    DCRAPolicy,
    FlushPolicy,
    HillClimbingPolicy,
    ICountPolicy,
    MLPAwarePolicy,
    POLICY_NAMES,
    RoundRobinPolicy,
    RunaheadThreadsPolicy,
    StallPolicy,
    create_policy,
)

from repro.testing import SMALL_CONFIG, TraceBuilder, make_processor


def _mem_trace(tail=30):
    builder = TraceBuilder()
    builder.load(9, 0x10000)
    builder.ialu(10, src1=9)
    builder.nops(tail)
    return builder.build()


def _ilp_trace(length=60):
    return TraceBuilder().nops(length).build()


class TestRegistry:
    def test_all_paper_policies_registered(self):
        for name in ("round_robin", "icount", "stall", "flush", "rat",
                     "dcra", "hill", "mlp"):
            assert name in POLICY_NAMES

    def test_create_policy(self):
        policy = create_policy("rat", SMALL_CONFIG)
        assert isinstance(policy, RunaheadThreadsPolicy)
        assert policy.uses_runahead

    def test_unknown_policy_raises(self):
        with pytest.raises(UnknownPolicyError):
            create_policy("magic", SMALL_CONFIG)

    def test_policy_names_sorted(self):
        assert list(POLICY_NAMES) == sorted(POLICY_NAMES)


class TestICount:
    def test_prefers_thread_with_fewer_inflight(self):
        traces = [_ilp_trace(), _ilp_trace()]
        cpu = make_processor(traces, policy="icount")
        pipe = cpu.pipeline
        pipe.threads[0].icount = 10
        pipe.threads[1].icount = 2
        assert pipe.policy.fetch_order(0) == [1, 0]

    def test_ties_break_by_thread_id(self):
        traces = [_ilp_trace(), _ilp_trace()]
        cpu = make_processor(traces, policy="icount")
        assert cpu.pipeline.policy.fetch_order(0) == [0, 1]


class TestRoundRobin:
    def test_rotates(self):
        traces = [_ilp_trace(), _ilp_trace()]
        cpu = make_processor(traces, policy="round_robin")
        policy = cpu.pipeline.policy
        assert isinstance(policy, RoundRobinPolicy)
        assert policy.fetch_order(0) == [0, 1]
        assert policy.fetch_order(1) == [1, 0]

    def test_completes_workload(self):
        traces = [_ilp_trace(), _ilp_trace()]
        result = make_processor(traces, policy="round_robin").run()
        assert all(stats.committed for stats in result.thread_stats)


class TestStall:
    def test_gates_thread_on_l2_miss(self):
        traces = [_mem_trace(), _ilp_trace(200)]
        cpu = make_processor(traces, policy="stall")
        pipe = cpu.pipeline
        detect = (SMALL_CONFIG.dcache.latency + SMALL_CONFIG.l2.latency)
        for _ in range(detect + 10):
            pipe.step()
        assert pipe.threads[0].fetch_gated_until > pipe.cycle

    def test_gate_lifts_after_resolve(self):
        traces = [_mem_trace()]
        cpu = make_processor(traces, policy="stall")
        result = cpu.run()
        assert result.thread_stats[0].committed >= len(traces[0])

    def test_memory_thread_fetches_less_than_under_icount(self):
        trace = _mem_trace(tail=100)
        co = _ilp_trace(300)
        stall_run = make_processor([trace, co], policy="stall").run()
        icount_run = make_processor([trace, co], policy="icount").run()
        stall_share = (stall_run.thread_stats[0].fetched
                       / max(1, stall_run.cycles))
        icount_share = (icount_run.thread_stats[0].fetched
                        / max(1, icount_run.cycles))
        assert stall_share <= icount_share + 0.05


class TestFlush:
    def test_flush_squashes_younger_work(self):
        traces = [_mem_trace(tail=60)]
        cpu = make_processor(traces, policy="flush")
        result = cpu.run()
        stats = result.thread_stats[0]
        assert stats.squashed > 0
        assert stats.committed >= len(traces[0])

    def test_flush_refetches_squashed_instructions(self):
        traces = [_mem_trace(tail=60)]
        cpu = make_processor(traces, policy="flush")
        result = cpu.run()
        stats = result.thread_stats[0]
        # Double execution: fetched strictly exceeds trace length.
        assert stats.fetched > len(traces[0])

    def test_flush_releases_rob_entries(self):
        traces = [_mem_trace(tail=60), _ilp_trace(300)]
        cpu = make_processor(traces, policy="flush")
        pipe = cpu.pipeline
        detect = SMALL_CONFIG.dcache.latency + SMALL_CONFIG.l2.latency
        for _ in range(detect + 20):
            pipe.step()
        # After the flush, thread 0 holds only the missing load (and
        # possibly the trigger's older siblings) in the ROB.
        assert pipe.rob.per_thread[0] <= 3
        pipe.check_invariants()


class TestDCRA:
    def test_classifies_slow_threads(self):
        traces = [_mem_trace(), _ilp_trace()]
        cpu = make_processor(traces, policy="dcra")
        pipe = cpu.pipeline
        policy = pipe.policy
        assert isinstance(policy, DCRAPolicy)
        pipe.threads[0].pending_l2_misses = 1
        assert policy._is_slow(pipe.threads[0])
        assert not policy._is_slow(pipe.threads[1])

    def test_shares_favor_slow_threads(self):
        traces = [_mem_trace(), _ilp_trace()]
        cpu = make_processor(traces, policy="dcra")
        policy = cpu.pipeline.policy
        cpu.pipeline.threads[0].pending_l2_misses = 1
        shares = policy._shares([0, 1])
        assert shares[0] > shares[1]
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_gates_over_entitled_thread(self):
        traces = [_mem_trace(tail=100), _ilp_trace(100)]
        cpu = make_processor(traces, policy="dcra")
        result = cpu.run()
        assert all(stats.committed for stats in result.thread_stats)

    def test_inactive_threads_donate_fp_share(self):
        traces = [_mem_trace(), _ilp_trace()]
        cpu = make_processor(traces, policy="dcra")
        policy = cpu.pipeline.policy
        policy._refresh_fp_activity()
        assert policy._fp_active == [False, False]


class TestHillClimbing:
    def test_initial_shares_equal(self):
        traces = [_ilp_trace(), _ilp_trace()]
        cpu = make_processor(traces, policy="hill")
        policy = cpu.pipeline.policy
        assert isinstance(policy, HillClimbingPolicy)
        assert policy.shares == [0.5, 0.5]

    def test_shares_always_sum_to_one(self):
        traces = [_ilp_trace(200), _mem_trace(tail=100)]
        cpu = make_processor(traces, policy="hill")
        policy = cpu.pipeline.policy
        for _ in range(SMALL_CONFIG.hill_epoch_cycles * 6):
            cpu.step()
            assert sum(policy.shares) == pytest.approx(1.0, abs=1e-6)

    def test_shares_respect_minimum(self):
        traces = [_ilp_trace(200), _mem_trace(tail=100)]
        cpu = make_processor(traces, policy="hill")
        policy = cpu.pipeline.policy
        for _ in range(SMALL_CONFIG.hill_epoch_cycles * 10):
            cpu.step()
        assert min(policy.shares) >= SMALL_CONFIG.hill_min_share - 1e-9

    def test_trial_sweep_cycles_through_threads(self):
        traces = [_ilp_trace(), _ilp_trace()]
        cpu = make_processor(traces, policy="hill")
        policy = cpu.pipeline.policy
        seen_trials = set()
        for _ in range(SMALL_CONFIG.hill_epoch_cycles * 8):
            cpu.step()
            seen_trials.add(policy._trial)
        assert {-1, 0, 1} <= seen_trials


class TestMLPAware:
    def test_gates_after_allowance(self):
        traces = [_mem_trace(tail=200)]
        cpu = make_processor(traces, policy="mlp")
        result = cpu.run()
        assert result.thread_stats[0].committed == len(traces[0])

    def test_predictor_adapts(self):
        cpu = make_processor([_mem_trace()], policy="mlp")
        policy = cpu.pipeline.policy
        assert isinstance(policy, MLPAwarePolicy)
        base = policy._predict(0x100)
        policy._train(0x100, extra_misses=3)
        grown = policy._predict(0x100)
        assert grown > base
        policy._train(0x100, extra_misses=0)
        assert policy._predict(0x100) < grown

    def test_between_stall_and_rat_on_mlp_workload(self):
        # MLP-aware exposes some but not all distant parallelism.
        builder = TraceBuilder()
        for index in range(8):
            builder.load(9 + index % 4, 0x10000 + 0x1000 * index)
            builder.nops(10)
        trace = builder.build()
        stall_cycles = make_processor([trace], policy="stall").run().cycles
        mlp_cycles = make_processor([trace], policy="mlp").run().cycles
        assert mlp_cycles <= stall_cycles + 10


class TestPolicyBase:
    def test_repr(self):
        policy = ICountPolicy(SMALL_CONFIG)
        assert "icount" in repr(policy)

    def test_stall_and_flush_are_icount_subclasses(self):
        assert issubclass(StallPolicy, ICountPolicy)
        assert issubclass(FlushPolicy, ICountPolicy)
        assert issubclass(RunaheadThreadsPolicy, ICountPolicy)
