"""Tests for the processor facade: SimResult, warmup, run loop."""

import os

import pytest

from repro.core.processor import SimResult, SMTProcessor
from repro.core.stats import ThreadStats
from repro.errors import SimulationError
from repro.sim.runner import FULL_ENV_VAR, RunSpec, default_spec
from repro.experiments.common import bench_workloads_per_class
from repro.trace.generator import generate_trace

from repro.testing import SMALL_CONFIG, TraceBuilder, make_processor


def _result(committed=(100, 50), executed=(120, 60), cycles=100):
    stats = []
    for c, e in zip(committed, executed):
        ts = ThreadStats()
        ts.committed = c
        ts.executed = e
        stats.append(ts)
    return SimResult(benchmarks=["a", "b"][:len(stats)], policy="icount",
                     cycles=cycles, thread_stats=stats)


class TestSimResult:
    def test_ipcs_and_throughput(self):
        result = _result(committed=(100, 50), cycles=100)
        assert result.ipcs == [1.0, 0.5]
        assert result.throughput == pytest.approx(0.75)

    def test_totals(self):
        result = _result()
        assert result.total_committed == 150
        assert result.total_executed == 180

    def test_avg_cpi(self):
        result = _result(committed=(100, 100), cycles=100)
        assert result.avg_cpi == pytest.approx(0.5)

    def test_ed2_normalized_per_committed(self):
        result = _result(committed=(100, 0), executed=(200, 0), cycles=100)
        # (200/100) * (100/100)^2 = 2.0
        assert result.ed2() == pytest.approx(2.0)

    def test_ed2_infinite_without_work(self):
        result = _result(committed=(0, 0), executed=(0, 0))
        assert result.ed2() == float("inf")
        assert result.avg_cpi == float("inf")

    def test_summary_keys(self):
        summary = _result().summary()
        assert set(summary) == {"cycles", "throughput", "committed",
                                "executed", "ed2"}

    def test_num_threads(self):
        assert _result().num_threads == 2


class TestRunLoop:
    def test_min_passes_validated(self):
        cpu = make_processor([TraceBuilder().nops(5).build()])
        with pytest.raises(SimulationError):
            cpu.run(min_passes=0)

    def test_multiple_passes(self):
        cpu = make_processor([TraceBuilder().nops(10).build()])
        result = cpu.run(min_passes=4)
        assert result.thread_stats[0].passes >= 4

    def test_l2_misses_reported(self):
        trace = TraceBuilder().load(9, 0x50000).nops(5).build()
        cpu = make_processor([trace])
        result = cpu.run()
        assert result.l2_misses[0] >= 1

    def test_step_advances_cycle(self):
        cpu = make_processor([TraceBuilder().nops(5).build()])
        cpu.step(3)
        assert cpu.cycle == 3


class TestWarmup:
    def test_warmup_installs_small_working_set(self):
        # SMALL data region (fits the small L2 comfortably): fully warmed.
        trace = TraceBuilder(data_region=4096).load(9, 128).nops(5).build()
        cpu = make_processor([trace])  # SMALL_CONFIG has warmup=True
        thread = cpu.pipeline.threads[0]
        assert cpu.pipeline.mem.peek_data(
            thread.physical_addr(128, 0)) == "l1"

    def test_warmup_skips_transient_lines_of_big_working_sets(self):
        # One-touch lines of a >L2 region stay cold (selective warmup).
        trace = TraceBuilder(data_region=1 << 26).load(9, 640).nops(5).build()
        cpu = make_processor([trace])
        thread = cpu.pipeline.threads[0]
        assert cpu.pipeline.mem.peek_data(
            thread.physical_addr(640, 0)) == "memory"

    def test_warmup_can_be_disabled(self):
        trace = TraceBuilder(data_region=4096).load(9, 128).nops(5).build()
        cpu = make_processor([trace], warmup=False)
        thread = cpu.pipeline.threads[0]
        assert cpu.pipeline.mem.peek_data(
            thread.physical_addr(128, 0)) == "memory"

    def test_warmup_resets_statistics(self):
        trace = generate_trace("gzip", 600, 11)
        cpu = SMTProcessor(SMALL_CONFIG.with_policy("icount"), [trace])
        assert cpu.pipeline.mem.total_stats().loads == 0
        assert cpu.pipeline.predictor.predictions == 0

    def test_warmup_trains_predictor_weights(self):
        trace = generate_trace("gzip", 600, 11)
        cpu = SMTProcessor(SMALL_CONFIG.with_policy("icount"), [trace])
        weights = cpu.pipeline.predictor._weights
        assert any(w != 0 for row in weights for w in row)


class TestEnvironmentKnobs:
    def test_default_spec_without_env(self, monkeypatch):
        monkeypatch.delenv(FULL_ENV_VAR, raising=False)
        assert default_spec() == RunSpec()

    def test_default_spec_full(self, monkeypatch):
        monkeypatch.setenv(FULL_ENV_VAR, "1")
        assert default_spec().trace_len == 12000

    def test_bench_workloads_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_WORKLOADS", "5")
        assert bench_workloads_per_class() == 5

    def test_bench_workloads_zero_means_full(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_WORKLOADS", "0")
        assert bench_workloads_per_class() is None

    def test_bench_workloads_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_WORKLOADS", raising=False)
        assert bench_workloads_per_class(4) == 4
