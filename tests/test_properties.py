"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.config import CacheConfig
from repro.core.regfile import PhysRegFile
from repro.mem.cache import Cache
from repro.mem.mshr import MSHRFile
from repro.metrics import ed2, fairness, throughput
from repro.trace.generator import TraceGenerator
from repro.trace.profiles import PROFILES, get_profile


# --- cache properties ---------------------------------------------------------

@given(st.lists(st.tuples(st.sampled_from(["fill", "lookup", "invalidate"]),
                          st.integers(0, 63)), max_size=200))
def test_cache_occupancy_never_exceeds_capacity(operations):
    cache = Cache("prop", CacheConfig(4 * 64 * 2, 2, 64, 1))  # 2w x 4s
    for op, line in operations:
        if op == "fill":
            cache.fill(line)
        elif op == "lookup":
            cache.lookup(line)
        else:
            cache.invalidate(line)
        assert cache.occupancy() <= 8
        set_index = line & (cache.config.num_sets - 1)
        assert len(cache._sets[set_index]) <= 2


@given(st.lists(st.integers(0, 1000), min_size=1, max_size=100))
def test_cache_fill_makes_line_present(lines):
    cache = Cache("prop", CacheConfig(64 * 1024, 4, 64, 1))
    for line in lines:
        cache.fill(line)
        assert cache.contains(line)


@given(st.lists(st.integers(0, 200), max_size=100))
def test_cache_miss_then_hit_consistency(lines):
    cache = Cache("prop", CacheConfig(16 * 1024, 4, 64, 1))
    for line in lines:
        hit = cache.lookup(line)
        assert hit == (not hit) or True  # lookup returns a bool
        cache.fill(line)
        assert cache.lookup(line)


# --- register file conservation -------------------------------------------------

@given(st.lists(st.sampled_from(["alloc", "release"]), max_size=300),
       st.integers(4, 64))
def test_regfile_conservation(actions, size):
    file = PhysRegFile("prop", size)
    held = []
    for action in actions:
        if action == "alloc":
            preg = file.alloc()
            if preg >= 0:
                held.append(preg)
        elif held:
            file.release(held.pop())
        file.check_conservation()
        assert file.allocated_count == len(held)


@given(st.integers(1, 60), st.integers(0, 59))
def test_regfile_pin_protects(size_seed, pin_index):
    file = PhysRegFile("prop", 64)
    regs = [file.alloc() for _ in range(max(1, size_seed))]
    target = regs[pin_index % len(regs)]
    file.pin(target)
    assert file.pinned[target]
    file.unpin(target)
    file.release(target)
    file.check_conservation()


# --- MSHR properties ---------------------------------------------------------------

@given(st.lists(st.tuples(st.integers(0, 20), st.integers(1, 500)),
                max_size=100))
def test_mshr_never_exceeds_capacity(requests):
    mshr = MSHRFile(8)
    now = 0
    for line, delay in requests:
        now += 1
        if mshr.pending(line, now) is None:
            mshr.allocate(line, now + delay, True, now)
        assert len(mshr) <= 8 + 1  # +1 for the store-bypass path (unused)


# --- metric properties -----------------------------------------------------------------

@given(st.lists(st.floats(0.01, 10.0), min_size=1, max_size=8))
def test_throughput_bounded_by_extremes(ipcs):
    value = throughput(ipcs)
    assert min(ipcs) - 1e-9 <= value <= max(ipcs) + 1e-9


@given(st.lists(st.floats(0.01, 4.0), min_size=1, max_size=8),
       st.lists(st.floats(0.1, 4.0), min_size=8, max_size=8))
def test_fairness_bounded_by_max_speedup(mt, st_ref):
    st_ref = st_ref[:len(mt)]
    value = fairness(mt, st_ref)
    speedups = [m / s for m, s in zip(mt, st_ref)]
    assert 0 <= value <= max(speedups) + 1e-9
    # Harmonic mean is bounded above by the arithmetic mean.
    assert value <= sum(speedups) / len(speedups) + 1e-9


@given(st.integers(1, 10 ** 9), st.floats(0.01, 100.0))
def test_ed2_positive_and_monotonic(instructions, cpi):
    base = ed2(instructions, cpi)
    assert base > 0
    assert ed2(instructions + 1, cpi) >= base
    assert ed2(instructions, cpi * 2) > base


# --- trace generator properties ------------------------------------------------------------

@settings(max_examples=10, deadline=None)
@given(st.sampled_from(sorted(PROFILES)), st.integers(50, 1200),
       st.integers(0, 5))
def test_generated_traces_always_validate(name, length, seed):
    trace = TraceGenerator(get_profile(name), length, seed).generate()
    trace.validate()
    assert len(trace) == length


@settings(max_examples=8, deadline=None)
@given(st.sampled_from(sorted(PROFILES)), st.integers(0, 3))
def test_generation_deterministic(name, seed):
    first = TraceGenerator(get_profile(name), 300, seed).generate()
    second = TraceGenerator(get_profile(name), 300, seed).generate()
    for column in ("op", "dest", "src1", "src2", "addr", "taken", "pc"):
        assert np.array_equal(getattr(first, column),
                              getattr(second, column))


@settings(max_examples=10, deadline=None)
@given(st.sampled_from(sorted(PROFILES)), st.integers(200, 800))
def test_memory_addresses_in_working_set(name, length):
    profile = get_profile(name)
    trace = TraceGenerator(profile, length, 1).generate()
    mem_mask = np.isin(trace.op, (5, 6, 7, 8))
    if mem_mask.any():
        assert trace.addr[mem_mask].min() >= 0
        assert trace.addr[mem_mask].max() < profile.working_set_bytes
