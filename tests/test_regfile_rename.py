"""Tests for the physical register file and rename state."""

import pytest

from repro.core.dyninst import DynInst
from repro.core.regfile import NEVER, PhysRegFile
from repro.core.rename import RenameState
from repro.errors import SimulationError
from repro.isa import OpClass, RegClass


def _inst(tid=0, seq=0):
    return DynInst(tid, seq, 0, 0, int(OpClass.IALU), 0x100, 0, 1, -1, -1,
                   False)


class TestPhysRegFile:
    def test_alloc_release_cycle(self):
        file = PhysRegFile("t", 4)
        regs = [file.alloc() for _ in range(4)]
        assert sorted(regs) == [0, 1, 2, 3]
        assert file.alloc() == -1
        file.release(regs[0])
        assert file.alloc() == regs[0]

    def test_alloc_resets_state(self):
        file = PhysRegFile("t", 2)
        preg = file.alloc()
        file.set_ready(preg, 5, invalid=True)
        file.release(preg)
        preg2 = file.alloc()
        assert preg2 == preg
        assert file.ready[preg2] == NEVER
        assert not file.inv[preg2]

    def test_double_release_raises(self):
        file = PhysRegFile("t", 2)
        preg = file.alloc()
        file.release(preg)
        with pytest.raises(SimulationError):
            file.release(preg)

    def test_release_pinned_raises(self):
        file = PhysRegFile("t", 2)
        preg = file.alloc()
        file.pin(preg)
        with pytest.raises(SimulationError):
            file.release(preg)
        file.unpin(preg)
        file.release(preg)

    def test_pin_unallocated_raises(self):
        file = PhysRegFile("t", 2)
        with pytest.raises(SimulationError):
            file.pin(0)

    def test_ready_and_waiters(self):
        file = PhysRegFile("t", 2)
        preg = file.alloc()
        waiter = _inst()
        file.add_waiter(preg, waiter)
        assert not file.is_ready(preg, 100)
        woken = file.set_ready(preg, 50, invalid=True)
        assert woken == [waiter]
        assert file.is_ready(preg, 50)
        assert file.inv[preg]
        # Waiter list is cleared after wakeup.
        assert file.set_ready(preg, 60) == []

    def test_conservation_check(self):
        file = PhysRegFile("t", 8)
        for _ in range(5):
            file.alloc()
        file.check_conservation()

    def test_high_water(self):
        file = PhysRegFile("t", 8)
        regs = [file.alloc() for _ in range(6)]
        for preg in regs:
            file.release(preg)
        assert file.high_water == 6

    def test_counts(self):
        file = PhysRegFile("t", 8)
        file.alloc()
        assert file.allocated_count == 1
        assert file.free_count == 7

    def test_rejects_zero_size(self):
        with pytest.raises(ValueError):
            PhysRegFile("t", 0)


class TestRenameState:
    def _files(self, size=96):
        return PhysRegFile("int", size), PhysRegFile("fp", size)

    def test_init_reserves_architectural_state(self):
        int_file, fp_file = self._files()
        RenameState(0, int_file, fp_file)
        assert int_file.allocated_count == 32
        assert fp_file.allocated_count == 32

    def test_init_raises_when_too_small(self):
        int_file, fp_file = self._files(16)
        with pytest.raises(SimulationError):
            RenameState(0, int_file, fp_file)

    def test_arch_registers_start_ready(self):
        int_file, fp_file = self._files()
        rename = RenameState(0, int_file, fp_file)
        for arch in range(32):
            assert int_file.is_ready(rename.lookup(RegClass.INT, arch), 0)

    def test_rename_and_undo(self):
        int_file, fp_file = self._files()
        rename = RenameState(0, int_file, fp_file)
        original = rename.lookup(RegClass.INT, 5)
        fresh = int_file.alloc()
        old = rename.rename_dest(RegClass.INT, 5, fresh)
        assert old == original
        assert rename.lookup(RegClass.INT, 5) == fresh
        rename.undo_rename(RegClass.INT, 5, old)
        assert rename.lookup(RegClass.INT, 5) == original

    def test_commit_advances_arch_map(self):
        int_file, fp_file = self._files()
        rename = RenameState(0, int_file, fp_file)
        fresh = int_file.alloc()
        rename.rename_dest(RegClass.INT, 3, fresh)
        dead = rename.commit_dest(RegClass.INT, 3, fresh)
        assert rename.arch[RegClass.INT][3] == fresh
        assert dead != fresh

    def test_pin_unpin_architectural(self):
        int_file, fp_file = self._files()
        rename = RenameState(0, int_file, fp_file)
        rename.pin_architectural()
        assert all(int_file.pinned[p] for p in rename.arch[RegClass.INT])
        rename.unpin_architectural()
        assert not any(int_file.pinned[p] for p in rename.arch[RegClass.INT])

    def test_restore_front_to_arch_releases_speculative(self):
        int_file, fp_file = self._files()
        rename = RenameState(0, int_file, fp_file)
        fresh = int_file.alloc()
        rename.rename_dest(RegClass.INT, 7, fresh)
        released_int, released_fp = rename.restore_front_to_arch()
        assert released_int == 1 and released_fp == 0
        assert rename.lookup(RegClass.INT, 7) == rename.arch[RegClass.INT][7]
        assert not int_file.is_allocated(fresh)

    def test_restore_noop_when_consistent(self):
        int_file, fp_file = self._files()
        rename = RenameState(0, int_file, fp_file)
        assert rename.restore_front_to_arch() == (0, 0)

    def test_check_maps_detects_freed_register(self):
        int_file, fp_file = self._files()
        rename = RenameState(0, int_file, fp_file)
        preg = rename.lookup(RegClass.INT, 0)
        int_file.release(preg)
        with pytest.raises(SimulationError):
            rename.check_maps()

    def test_two_threads_disjoint_arch_state(self):
        int_file, fp_file = self._files(128)
        first = RenameState(0, int_file, fp_file)
        second = RenameState(1, int_file, fp_file)
        own = set(first.arch[RegClass.INT])
        other = set(second.arch[RegClass.INT])
        assert not own & other
