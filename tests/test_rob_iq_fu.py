"""Tests for the shared ROB, issue queues and FU pools."""

import pytest

from repro.core.dyninst import DynInst, InstState
from repro.core.fu import FUPool
from repro.core.issue_queue import IssueQueue, MEMORY_WAIT
from repro.core.rob import SharedROB
from repro.errors import SimulationError
from repro.isa import FUKind, OpClass


def _inst(tid=0, seq=0, op=OpClass.IALU, gseq=None):
    inst = DynInst(tid, seq, seq, 0, int(op), 0x100 + 4 * seq, 0, 1, -1, -1,
                   False)
    inst.gseq = gseq if gseq is not None else seq
    return inst


class TestSharedROB:
    def test_append_and_head(self):
        rob = SharedROB(8, 2)
        first = _inst(tid=0, seq=0)
        rob.append(first)
        rob.append(_inst(tid=1, seq=0))
        assert rob.head(0) is first
        assert rob.occupancy == 2
        assert rob.per_thread == [1, 1]

    def test_capacity_shared_across_threads(self):
        rob = SharedROB(4, 2)
        for seq in range(3):
            rob.append(_inst(tid=0, seq=seq))
        rob.append(_inst(tid=1, seq=0))
        assert rob.is_full()
        with pytest.raises(SimulationError):
            rob.append(_inst(tid=1, seq=1))

    def test_pop_head_in_order(self):
        rob = SharedROB(8, 1)
        instrs = [_inst(seq=seq) for seq in range(3)]
        for inst in instrs:
            rob.append(inst)
        assert rob.pop_head(0) is instrs[0]
        assert rob.pop_head(0) is instrs[1]
        assert rob.occupancy == 1

    def test_squash_younger_returns_youngest_first(self):
        rob = SharedROB(8, 1)
        instrs = [_inst(seq=seq) for seq in range(5)]
        for inst in instrs:
            rob.append(inst)
        squashed = rob.squash_younger(0, boundary_seq=1)
        assert [inst.seq for inst in squashed] == [4, 3, 2]
        assert rob.occupancy == 2

    def test_squash_only_affects_one_thread(self):
        rob = SharedROB(8, 2)
        rob.append(_inst(tid=0, seq=0))
        rob.append(_inst(tid=1, seq=0))
        rob.squash_all(0)
        assert rob.is_empty(0)
        assert not rob.is_empty(1)

    def test_thread_window_iterates_oldest_first(self):
        rob = SharedROB(8, 1)
        for seq in range(3):
            rob.append(_inst(seq=seq))
        assert [i.seq for i in rob.thread_window(0)] == [0, 1, 2]

    def test_check_occupancy(self):
        rob = SharedROB(8, 2)
        rob.append(_inst())
        rob.check_occupancy()


class TestIssueQueue:
    def test_insert_remove_accounting(self):
        queue = IssueQueue("int", 4, 2)
        inst = _inst()
        queue.insert(inst)
        assert queue.size == 1 and queue.per_thread[0] == 1
        queue.remove(inst)
        assert queue.size == 0 and not inst.in_iq

    def test_remove_idempotent(self):
        queue = IssueQueue("int", 4, 1)
        inst = _inst()
        queue.insert(inst)
        queue.remove(inst)
        queue.remove(inst)
        assert queue.size == 0

    def test_overflow_raises(self):
        queue = IssueQueue("int", 1, 1)
        queue.insert(_inst(seq=0))
        with pytest.raises(SimulationError):
            queue.insert(_inst(seq=1))

    def test_take_ready_oldest_first_across_threads(self):
        queue = IssueQueue("int", 8, 2)
        young = _inst(tid=0, seq=5, gseq=10)
        old = _inst(tid=1, seq=1, gseq=2)
        for inst in (young, old):
            inst.state = InstState.READY
            queue.mark_ready(inst)
        selected = queue.take_ready(1)
        assert selected == [old]
        # The unselected instruction stays ready for the next cycle.
        assert queue.take_ready(1) == [young]

    def test_take_ready_purges_squashed(self):
        queue = IssueQueue("int", 8, 1)
        dead = _inst(seq=0)
        dead.state = InstState.SQUASHED
        live = _inst(seq=1)
        live.state = InstState.READY
        queue.mark_ready(dead)
        queue.mark_ready(live)
        assert queue.take_ready(4) == [live]

    def test_requeue(self):
        queue = IssueQueue("int", 8, 1)
        inst = _inst()
        inst.state = InstState.READY
        queue.requeue(inst)
        assert queue.take_ready(1) == [inst]

    def test_ready_count(self):
        queue = IssueQueue("int", 8, 1)
        inst = _inst()
        inst.state = InstState.READY
        queue.mark_ready(inst)
        assert queue.ready_count() == 1


class TestNextReadyCycle:
    """The queue's term in the per-structure skip-horizon contract."""

    def test_empty_queue_has_no_wakeup(self):
        queue = IssueQueue("ls", 8, 1)
        assert queue.next_ready_cycle(100) is None

    def test_live_ready_entry_pins_now(self):
        queue = IssueQueue("ls", 8, 1)
        inst = _inst()
        inst.state = InstState.READY
        queue.mark_ready(inst)
        assert queue.next_ready_cycle(100) == 100

    def test_replay_only_defers_to_memory(self):
        queue = IssueQueue("ls", 8, 1)
        inst = _inst(op=OpClass.LOAD)
        inst.state = InstState.READY
        queue.insert(inst)
        queue.requeue(inst, replay=True)
        assert inst.replay
        assert queue.next_ready_cycle(100) == MEMORY_WAIT

    def test_mixed_ready_and_replay_pins_now(self):
        queue = IssueQueue("ls", 8, 2)
        replaying = _inst(tid=0, seq=0, op=OpClass.LOAD)
        replaying.state = InstState.READY
        queue.insert(replaying)
        queue.requeue(replaying, replay=True)
        issueable = _inst(tid=1, seq=1)
        issueable.state = InstState.READY
        queue.mark_ready(issueable)
        assert queue.next_ready_cycle(7) == 7

    def test_take_ready_sheds_replay_deferral(self):
        queue = IssueQueue("ls", 8, 1)
        inst = _inst(op=OpClass.LOAD)
        inst.state = InstState.READY
        queue.insert(inst)
        queue.requeue(inst, replay=True)
        selected = queue.take_ready(4)
        assert selected == [inst]
        assert not inst.replay
        assert queue._replay_blocked == 0

    def test_remove_clears_replay_accounting(self):
        # A replaying load squashed while waiting must not leave the
        # queue claiming a memory wait forever.
        queue = IssueQueue("ls", 8, 1)
        inst = _inst(op=OpClass.LOAD)
        inst.state = InstState.READY
        queue.insert(inst)
        queue.requeue(inst, replay=True)
        inst.state = InstState.SQUASHED
        queue.remove(inst)
        assert queue._replay_blocked == 0
        assert queue.next_ready_cycle(3) is None

    def test_stale_only_list_is_cleared(self):
        queue = IssueQueue("int", 8, 1)
        inst = _inst()
        inst.state = InstState.SQUASHED
        queue.mark_ready(inst)
        assert queue.next_ready_cycle(0) is None
        assert queue._ready == []


class TestFUPool:
    def test_budgets_match_table1(self):
        pool = FUPool(6, 3, 4)
        assert pool.capacity(FUKind.INT) == 6
        assert pool.capacity(FUKind.FP) == 3
        assert pool.capacity(FUKind.LDST) == 4

    def test_acquire_consumes_budget(self):
        pool = FUPool(2, 1, 1)
        assert pool.acquire(int(OpClass.IALU))
        assert pool.acquire(int(OpClass.IMUL))
        assert not pool.acquire(int(OpClass.IALU))

    def test_new_cycle_refreshes(self):
        pool = FUPool(1, 1, 1)
        pool.acquire(int(OpClass.IALU))
        pool.new_cycle()
        assert pool.acquire(int(OpClass.IALU))

    def test_pools_independent(self):
        pool = FUPool(1, 1, 1)
        assert pool.acquire(int(OpClass.IALU))
        assert pool.acquire(int(OpClass.FADD))
        assert pool.acquire(int(OpClass.LOAD))

    def test_branch_uses_int_units(self):
        pool = FUPool(1, 1, 1)
        assert pool.acquire(int(OpClass.BRANCH))
        assert not pool.acquire(int(OpClass.IALU))

    def test_rejects_empty_pool(self):
        with pytest.raises(ValueError):
            FUPool(0, 1, 1)

    def test_next_release_is_next_cycle(self):
        # Fully-pipelined pools refresh every budget at the next cycle
        # boundary; the horizon must say so regardless of current usage.
        pool = FUPool(1, 1, 1)
        assert pool.next_release_cycle(41) == 42
        pool.acquire(int(OpClass.IALU))
        assert pool.next_release_cycle(41) == 42
