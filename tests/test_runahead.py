"""Tests for the Runahead Threads mechanism (paper §3)."""

import dataclasses

import pytest

from repro.core.runahead import RunaheadCache
from repro.core.thread import ThreadMode
from repro.isa import RegClass

from repro.testing import SMALL_CONFIG, TraceBuilder, make_processor

FULL_MISS = (SMALL_CONFIG.dcache.latency + SMALL_CONFIG.l2.latency
             + SMALL_CONFIG.memory_latency)


def _miss_trace(tail_ops=200):
    """A trace whose first load always misses to memory, followed by
    independent work and a second *distant* miss: far enough that a
    stalled thread's already-fetched window does not reach it (so only
    runahead can expose its parallelism), near enough that a runahead
    episode does."""
    builder = TraceBuilder()
    builder.load(9, 0x10000)              # long-latency trigger
    builder.ialu(10, src1=9)              # dependent: folds in runahead
    for index in range(tail_ops):
        builder.ialu(1 + index % 8)       # independent address-pool work
    builder.load(11, 0x20000)             # independent: prefetched
    builder.ialu(12, src1=11)
    builder.nops(10)
    return builder.build()


def _run_until(cpu, predicate, limit=5000):
    for _ in range(limit):
        if predicate():
            return True
        cpu.step()
    return False


class TestEntryAndExit:
    def test_enters_runahead_on_l2_miss_at_head(self):
        cpu = make_processor([_miss_trace()], policy="rat")
        thread = cpu.pipeline.threads[0]
        assert _run_until(cpu, lambda: thread.in_runahead)
        assert thread.stats.runahead_episodes == 1

    def test_icount_never_enters_runahead(self):
        cpu = make_processor([_miss_trace()], policy="icount")
        thread = cpu.pipeline.threads[0]
        cpu.run()
        assert thread.stats.runahead_episodes == 0

    def test_exits_when_miss_resolves(self):
        cpu = make_processor([_miss_trace()], policy="rat")
        thread = cpu.pipeline.threads[0]
        assert _run_until(cpu, lambda: thread.in_runahead)
        assert _run_until(cpu, lambda: not thread.in_runahead)
        assert thread.mode == ThreadMode.NORMAL

    def test_rewinds_to_trigger_load(self):
        cpu = make_processor([_miss_trace()], policy="rat")
        thread = cpu.pipeline.threads[0]
        _run_until(cpu, lambda: thread.in_runahead)
        trigger_index = thread.runahead_trigger_index
        _run_until(cpu, lambda: not thread.in_runahead)
        assert thread.cursor == trigger_index

    def test_architectural_state_restored_after_exit(self):
        cpu = make_processor([_miss_trace()], policy="rat")
        thread = cpu.pipeline.threads[0]
        _run_until(cpu, lambda: thread.in_runahead)
        arch_snapshot = [list(thread.rename.arch[RegClass.INT]),
                         list(thread.rename.arch[RegClass.FP])]
        _run_until(cpu, lambda: not thread.in_runahead)
        assert thread.rename.front[RegClass.INT] == arch_snapshot[0]
        assert thread.rename.front[RegClass.FP] == arch_snapshot[1]
        cpu.pipeline.check_invariants()

    def test_all_work_commits_architecturally(self):
        trace = _miss_trace()
        cpu = make_processor([trace], policy="rat")
        result = cpu.run()
        assert result.thread_stats[0].committed >= len(trace)
        cpu.pipeline.check_invariants()

    def test_pseudo_retired_work_recorded(self):
        cpu = make_processor([_miss_trace()], policy="rat")
        result = cpu.run()
        assert result.thread_stats[0].pseudo_retired > 0

    def test_runahead_cycles_sampled(self):
        cpu = make_processor([_miss_trace()], policy="rat")
        result = cpu.run()
        stats = result.thread_stats[0]
        assert stats.runahead_cycles > 0
        assert stats.runahead_reg_samples == stats.runahead_cycles


class TestPrefetching:
    def test_runahead_prefetches_future_miss(self):
        cpu = make_processor([_miss_trace()], policy="rat")
        cpu.run()
        assert cpu.pipeline.mem.stats[0].prefetches > 0

    def test_runahead_faster_than_stall_on_mlp(self):
        trace = _miss_trace()
        rat_cycles = make_processor([trace], policy="rat").run().cycles
        stall_cycles = make_processor([trace], policy="stall").run().cycles
        assert rat_cycles < stall_cycles

    def test_prefetch_ablation_suppresses_memory_traffic(self):
        trace = _miss_trace()
        cpu = make_processor([trace], policy="rat", rat_prefetch=False)
        cpu.run()
        assert cpu.pipeline.mem.stats[0].prefetches == 0

    def test_prefetch_ablation_is_slower(self):
        trace = _miss_trace()
        with_pf = make_processor([trace], policy="rat").run().cycles
        without_pf = make_processor([trace], policy="rat",
                                    rat_prefetch=False).run().cycles
        assert without_pf >= with_pf

    def test_no_retrigger_after_suppressed_prefetch(self):
        trace = _miss_trace()
        cpu = make_processor([trace], policy="rat", rat_prefetch=False)
        thread = cpu.pipeline.threads[0]
        cpu.run()
        # The second load's prefetch was suppressed; after recovery it must
        # not re-trigger runahead (paper §6.1).
        assert thread.no_retrigger
        assert thread.stats.runahead_episodes == 1


class TestInvalidPropagation:
    def test_dependents_fold(self):
        cpu = make_processor([_miss_trace()], policy="rat")
        result = cpu.run()
        assert result.thread_stats[0].folded > 0

    def test_invalid_branch_does_not_redirect(self):
        builder = TraceBuilder()
        builder.load(9, 0x10000)
        builder.branch(taken=True, src1=9)   # depends on the missing load
        builder.nops(30)
        cpu = make_processor([builder.build()], policy="rat")
        result = cpu.run()
        assert result.thread_stats[0].committed >= 32
        cpu.pipeline.check_invariants()

    def test_dependent_load_does_not_prefetch(self):
        # Long tail so the trace does not wrap into a second pass (whose
        # loads would legitimately prefetch) during the episode.
        builder = TraceBuilder()
        builder.load(9, 0x10000)
        builder.load(10, 0x20000, src1=9)    # chase: address is INV
        builder.nops(600)
        cpu = make_processor([builder.build()], policy="rat")
        cpu.run()
        # The chase load folded with an INV address: no speculative access.
        assert cpu.pipeline.mem.stats[0].prefetches == 0


class TestFPInvalidation:
    def _fp_trace(self):
        builder = TraceBuilder()
        builder.load(9, 0x10000)        # trigger
        builder.fadd(40, src1=41)       # FP compute: dropped at decode
        builder.fadd(42, src1=40)       # consumer of dropped producer
        builder.nops(30)
        return builder.build()

    def test_fp_ops_fold_at_decode_in_runahead(self):
        cpu = make_processor([self._fp_trace()], policy="rat")
        result = cpu.run()
        assert result.thread_stats[0].committed >= 33
        cpu.pipeline.check_invariants()

    def test_fp_invalidation_can_be_disabled(self):
        cpu = make_processor([self._fp_trace()], policy="rat",
                             rat_fp_invalidation=False)
        result = cpu.run()
        assert result.thread_stats[0].committed >= 33

    def test_sync_ignored_in_runahead(self):
        builder = TraceBuilder()
        builder.load(9, 0x10000)
        builder.sync(src1=1)
        builder.nops(30)
        cpu = make_processor([builder.build()], policy="rat")
        result = cpu.run()
        assert result.thread_stats[0].committed >= 32


class TestStopFetchAblation:
    def test_stop_fetch_limits_speculation(self):
        trace = _miss_trace()
        normal = make_processor([trace], policy="rat")
        normal_result = normal.run()
        stopped = make_processor([trace], policy="rat",
                                 rat_stop_fetch_in_runahead=True)
        stopped_result = stopped.run()
        assert (stopped_result.thread_stats[0].pseudo_retired
                <= normal_result.thread_stats[0].pseudo_retired)


class TestRunaheadCache:
    def test_store_to_load_validity_forwarding(self):
        cache = RunaheadCache(1024)
        cache.record_store(0x100, valid=False)
        assert cache.probe_load(0x100) is False
        cache.record_store(0x100, valid=True)
        assert cache.probe_load(0x100) is True

    def test_miss_returns_none(self):
        cache = RunaheadCache(1024)
        assert cache.probe_load(0x500) is None

    def test_capacity_eviction(self):
        cache = RunaheadCache(16)   # two 8-byte words
        cache.record_store(0x00, True)
        cache.record_store(0x08, True)
        cache.record_store(0x10, True)
        assert cache.probe_load(0x00) is None

    def test_clear(self):
        cache = RunaheadCache(1024)
        cache.record_store(0x100, True)
        cache.clear()
        assert cache.probe_load(0x100) is None

    def test_pipeline_with_runahead_cache_enabled(self):
        builder = TraceBuilder()
        builder.load(9, 0x10000)
        builder.store(0x30000, src1=1, src2=2)
        builder.load(10, 0x30000)
        builder.nops(30)
        cpu = make_processor([builder.build()], policy="rat",
                             rat_runahead_cache=True)
        result = cpu.run()
        assert result.thread_stats[0].committed >= 33
        cpu.pipeline.check_invariants()


class TestRegisterPressure:
    def test_runahead_mode_holds_fewer_registers(self):
        # A memory-bound loop: in normal mode the window fills with
        # in-flight instructions holding registers; in runahead they drain.
        builder = TraceBuilder()
        for index in range(12):
            builder.load(9 + index % 8, 0x10000 + 0x1000 * index)
            builder.ialu(17, src1=9 + index % 8)
            builder.nops(4)
        cpu = make_processor([builder.build()], policy="rat")
        result = cpu.run()
        stats = result.thread_stats[0]
        if stats.runahead_reg_samples:
            assert stats.avg_regs_runahead() < stats.avg_regs_normal() * 1.5
