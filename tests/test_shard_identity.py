"""Shard-merge bit-identity: the ISSUE 5 acceptance criterion.

The full ``repro all`` campaign run as one serial process and as the
union of 3 ``--shard`` executors over a shared store must render every
exhibit byte-identically; a second assembly pass must perform zero
simulations and zero re-renders (exhibit render cache hits all the way).
"""

import io
import sys

import pytest

from repro.cli import main

BASE = ["--trace-len", "200", "--seed", "3",
        "--workloads-per-class", "1", "--classes", "MEM2",
        "--no-progress", "--format", "json"]

EXHIBITS = ("figure1", "figure2", "figure3", "figure4", "figure5",
            "figure6", "table1", "table2")


def run_cli(argv):
    """Run the CLI capturing its stderr status stream."""
    captured = io.StringIO()
    original = sys.stderr
    sys.stderr = captured
    try:
        assert main(argv) == 0
    finally:
        sys.stderr = original
    return captured.getvalue()


@pytest.fixture(scope="module")
def flow(tmp_path_factory):
    """Serial reference, 3-shard execute, assembly, second assembly."""
    root = tmp_path_factory.mktemp("shard-identity")
    cache = str(root / "cache")
    dirs = {name: str(root / name)
            for name in ("serial", "union", "second")}
    stderr = {}
    stderr["serial"] = run_cli(
        ["all", *BASE, "--output", dirs["serial"]])
    for k in (1, 2, 3):
        stderr[f"shard{k}"] = run_cli(
            ["all", *BASE, "--shard", f"{k}/3", "--cache-dir", cache])
    stderr["union"] = run_cli(
        ["all", *BASE, "--cache-dir", cache, "--output", dirs["union"]])
    stderr["second"] = run_cli(
        ["all", *BASE, "--cache-dir", cache, "--output", dirs["second"]])
    return {"dirs": dirs, "stderr": stderr}


def read(directory, exhibit):
    with open(f"{directory}/{exhibit}.json", "rb") as handle:
        return handle.read()


class TestShardMergeBitIdentity:
    def test_every_exhibit_byte_identical(self, flow):
        for exhibit in EXHIBITS:
            serial = read(flow["dirs"]["serial"], exhibit)
            union = read(flow["dirs"]["union"], exhibit)
            assert serial == union, f"{exhibit} differs after shard merge"
            assert serial  # non-trivial documents

    def test_shards_cover_the_campaign_disjointly(self, flow):
        owned = []
        for k in (1, 2, 3):
            text = flow["stderr"][f"shard{k}"]
            assert f"shard {k}/3" in text
            # "executed N of M cells" — N varies per shard, M is fixed.
            executed = text.split("executed ", 1)[1]
            owned.append(int(executed.split(" ", 1)[0]))
            total = int(executed.split("of ", 1)[1].split(" ", 1)[0])
            assert "simulated=" in text
        assert sum(owned) == total
        assert all(count > 0 for count in owned)  # a real 3-way split

    def test_assembly_simulates_nothing(self, flow):
        # Every cell came from the shared store the shards filled.
        assert "simulated=0," in flow["stderr"]["union"]
        assert "8 assembled, 0 from render cache" in \
            flow["stderr"]["union"]

    def test_second_pass_zero_simulations_zero_rerenders(self, flow):
        text = flow["stderr"]["second"]
        assert "simulated=0," in text
        assert "cache_hits=0," in text        # no run was even read
        assert "0 assembled, 8 from render cache" in text

    def test_second_pass_output_still_byte_identical(self, flow):
        for exhibit in EXHIBITS:
            assert read(flow["dirs"]["serial"], exhibit) == \
                read(flow["dirs"]["second"], exhibit), \
                f"{exhibit} render-cache round trip changed bytes"

    def test_shard_requires_cache_dir(self, capsys):
        assert main(["all", *BASE, "--shard", "1/3"]) == 2
        assert "--cache-dir" in capsys.readouterr().err
