"""Tests for the measurement layer: runner caching, baselines, sweeps."""

import dataclasses

import pytest

from repro.config import baseline
from repro.sim.baselines import clear_baseline_cache, single_thread_ipc
from repro.sim.results import aggregate_by_class, normalize_to, run_fairness
from repro.sim.runner import (
    RunSpec,
    build_traces,
    clear_run_cache,
    run_workload,
)
from repro.sim.sweep import sweep_policies
from repro.trace.workloads import Workload, get_workloads

#: Tiny spec so these tests stay fast.
TINY = RunSpec(trace_len=400, seed=2, max_cycles=300_000)

WORKLOAD = Workload("ILP2", ("gzip", "eon"))
MEM_WORKLOAD = Workload("MEM2", ("swim", "art"))


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_run_cache()
    clear_baseline_cache()
    yield
    clear_run_cache()
    clear_baseline_cache()


class TestRunner:
    def test_build_traces_matches_workload(self):
        traces = build_traces(WORKLOAD, TINY)
        assert [t.name for t in traces] == ["gzip", "eon"]
        assert all(len(t) == TINY.trace_len for t in traces)

    def test_run_workload_returns_metrics(self):
        run = run_workload(WORKLOAD, "icount", spec=TINY)
        assert run.throughput > 0
        assert len(run.ipcs) == 2
        assert run.executed >= run.result.total_committed

    def test_memoization_returns_same_object(self):
        first = run_workload(WORKLOAD, "icount", spec=TINY)
        second = run_workload(WORKLOAD, "icount", spec=TINY)
        assert first is second

    def test_distinct_policies_distinct_runs(self):
        first = run_workload(MEM_WORKLOAD, "icount", spec=TINY)
        second = run_workload(MEM_WORKLOAD, "rat", spec=TINY)
        assert first is not second

    def test_distinct_configs_distinct_runs(self):
        small = baseline().with_registers(160)
        first = run_workload(WORKLOAD, "icount", spec=TINY)
        second = run_workload(WORKLOAD, "icount", config=small, spec=TINY)
        assert first is not second


class TestBaselines:
    def test_single_thread_ipc_positive(self):
        assert single_thread_ipc("gzip", spec=TINY) > 0

    def test_memoized(self):
        first = single_thread_ipc("gzip", spec=TINY)
        second = single_thread_ipc("gzip", spec=TINY)
        assert first == second

    def test_policy_field_ignored_for_reference(self):
        via_rat = single_thread_ipc("gzip",
                                    config=baseline().with_policy("rat"),
                                    spec=TINY)
        via_icount = single_thread_ipc("gzip", spec=TINY)
        assert via_rat == via_icount


class TestAggregation:
    def test_aggregate_requires_homogeneous_runs(self):
        ilp = run_workload(WORKLOAD, "icount", spec=TINY)
        mem = run_workload(MEM_WORKLOAD, "icount", spec=TINY)
        with pytest.raises(ValueError):
            aggregate_by_class([ilp, mem], spec=TINY)

    def test_aggregate_single_run(self):
        run = run_workload(WORKLOAD, "icount", spec=TINY)
        agg = aggregate_by_class([run], spec=TINY)
        assert agg.klass == "ILP2"
        assert agg.throughput == pytest.approx(run.throughput)
        assert 0 <= agg.fairness <= 1.5

    def test_aggregate_rejects_empty(self):
        with pytest.raises(ValueError):
            aggregate_by_class([], spec=TINY)

    def test_fairness_uses_references(self):
        run = run_workload(WORKLOAD, "icount", spec=TINY)
        value = run_fairness(run, spec=TINY)
        assert 0 < value <= 1.5

    def test_normalize_to(self):
        values = {"a": 2.0, "b": 4.0}
        normalized = normalize_to(values, "a")
        assert normalized == {"a": 1.0, "b": 2.0}

    def test_normalize_rejects_zero_base(self):
        with pytest.raises(ValueError):
            normalize_to({"a": 0.0}, "a")


class TestSweep:
    def test_sweep_shapes(self):
        sweep = sweep_policies(("icount", "rat"), ("MEM2",), spec=TINY,
                               workloads_per_class=2)
        assert set(sweep.cells) == {("icount", "MEM2"), ("rat", "MEM2")}
        row = sweep.row("rat", "throughput")
        assert len(row) == 1 and row[0] > 0

    def test_relative_metric(self):
        sweep = sweep_policies(("icount", "rat"), ("MEM2",), spec=TINY,
                               workloads_per_class=2)
        relative = sweep.relative("rat", "icount", "throughput")
        assert relative[0] == pytest.approx(
            sweep.metric("rat", "MEM2", "throughput")
            / sweep.metric("icount", "MEM2", "throughput"))

    def test_average(self):
        sweep = sweep_policies(("icount",), ("ILP2", "MEM2"), spec=TINY,
                               workloads_per_class=1)
        average = sweep.average("icount", "throughput")
        row = sweep.row("icount", "throughput")
        assert average == pytest.approx(sum(row) / 2)

    def test_workloads_per_class_cap(self):
        sweep = sweep_policies(("icount",), ("ILP2",), spec=TINY,
                               workloads_per_class=3)
        assert len(sweep.cells[("icount", "ILP2")].runs) == 3
