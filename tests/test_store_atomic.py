"""Atomic store writes: a crash or race can never leave a torn entry.

Satellite of ISSUE 5: N sharded executors share one ``--cache-dir``, so
the invariant is that a reader observes a complete entry or no entry —
never partial JSON.  Writes go to a same-directory temp file and land
via ``os.replace``; these tests pin the crash-mid-write behaviour for
the result store, the exhibit-render cache and the bench report writer.
"""

import json
import os

import pytest

from repro.sim.engine import SimEngine, SweepCell, simulate_cell
from repro.sim.runner import RunSpec
from repro.sim.store import (DiskStore, ExhibitRenderCache,
                             atomic_write_json)
from repro.trace.workloads import Workload

TINY = RunSpec(trace_len=200, seed=3, max_cycles=200_000)
CELL = SweepCell.make(Workload("ILP2", ("gzip", "eon")), "icount",
                      spec=TINY)


@pytest.fixture(scope="module")
def result():
    return simulate_cell(CELL)


def tree(root):
    files = []
    for dirpath, _dirnames, filenames in os.walk(root):
        files.extend(os.path.join(dirpath, name) for name in filenames)
    return files


class TestAtomicWriteJson:
    def test_writes_and_replaces(self, tmp_path):
        path = str(tmp_path / "doc.json")
        atomic_write_json(path, {"v": 1})
        atomic_write_json(path, {"v": 2})
        assert json.load(open(path)) == {"v": 2}
        assert tree(tmp_path) == [path]  # no temp residue

    def test_crash_at_replace_leaves_no_file(self, tmp_path,
                                             monkeypatch):
        path = str(tmp_path / "doc.json")

        def exploding_replace(_src, _dst):
            raise OSError("disk gone")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError):
            atomic_write_json(path, {"v": 1})
        monkeypatch.undo()
        assert tree(tmp_path) == []  # neither doc nor temp survives

    def test_crash_mid_serialization_leaves_no_file(self, tmp_path):
        path = str(tmp_path / "doc.json")
        with pytest.raises(TypeError):
            atomic_write_json(path, {"bad": object()})
        assert tree(tmp_path) == []


class TestDiskStoreCrashMidWrite:
    def test_crash_before_replace_is_a_miss_not_a_torn_entry(
            self, tmp_path, monkeypatch, result):
        cache = str(tmp_path / "cache")
        store = DiskStore(cache)

        def exploding_replace(_src, _dst):
            raise OSError("killed mid-write")

        monkeypatch.setattr(os, "replace", exploding_replace)
        store.put(CELL.key(), result)  # best-effort: must not raise
        monkeypatch.undo()

        # Nothing half-written is visible anywhere on disk.
        assert tree(cache) == []
        fresh = DiskStore(cache)
        assert fresh.get(CELL.key()) is None
        assert len(fresh) == 0

        # The writing process itself still holds the result in memory —
        # a persistence failure must not lose work already in hand.
        assert store.get(CELL.key()) is not None

        # And a later healthy write fully recovers the entry.
        fresh.put(CELL.key(), result)
        recovered = DiskStore(cache).get(CELL.key())
        assert recovered is not None
        assert recovered.to_dict() == result.to_dict()

    def test_hard_kill_leftover_tmp_is_invisible(self, tmp_path, result):
        # A writer killed before os.replace leaves only a *.tmp orphan.
        # Emulate that exact on-disk state and check every reader path
        # ignores it.
        cache = str(tmp_path / "cache")
        store = DiskStore(cache)
        store.put(CELL.key(), result)
        fanout = os.path.dirname(store._path(CELL.key()))
        with open(os.path.join(fanout, "deadbeef.tmp"), "w") as handle:
            handle.write('{"key": "deadbeef", "result": {"trunc')

        fresh = DiskStore(cache)
        assert len(fresh) == 1
        assert [entry.key for entry in fresh.entries()] == [CELL.key()]
        assert fresh.stats()["entries"] == 1
        assert fresh.get(CELL.key()) is not None

    def test_concurrent_stores_same_key_stay_complete(self, tmp_path,
                                                      result):
        # Two engines (processes) racing on one key: whoever lands last,
        # the entry is always complete and readable.
        cache = str(tmp_path / "cache")
        DiskStore(cache).put(CELL.key(), result)
        DiskStore(cache).put(CELL.key(), result)
        engine = SimEngine(store=DiskStore(cache))
        run = engine.run_cells([CELL])[0]
        assert engine.counters.simulated == 0
        assert run.result.to_dict() == result.to_dict()


class TestExhibitRenderCacheAtomicity:
    DOCUMENT = {"exhibit": "Figure 1", "title": "t", "data": {},
                "sections": []}

    def test_round_trip(self, tmp_path):
        cache = ExhibitRenderCache(str(tmp_path / "exhibits"))
        cache.put("a" * 64, self.DOCUMENT)
        assert cache.get("a" * 64) == self.DOCUMENT
        assert len(cache) == 1
        assert cache.hits == 1 and cache.puts == 1

    def test_crash_mid_write_is_a_miss(self, tmp_path, monkeypatch):
        cache = ExhibitRenderCache(str(tmp_path / "exhibits"))

        def exploding_replace(_src, _dst):
            raise OSError("killed mid-write")

        monkeypatch.setattr(os, "replace", exploding_replace)
        cache.put("b" * 64, self.DOCUMENT)  # best-effort: must not raise
        monkeypatch.undo()
        assert tree(tmp_path) == []
        assert cache.get("b" * 64) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        root = str(tmp_path / "exhibits")
        cache = ExhibitRenderCache(root)
        with open(os.path.join(root, "c" * 64 + ".json"), "w") as handle:
            handle.write('{"result": {"trunc')
        assert cache.get("c" * 64) is None
        assert cache.misses == 1


class TestBenchReportAtomicity:
    def test_write_report_is_atomic(self, tmp_path, monkeypatch):
        from repro import bench
        path = str(tmp_path / "BENCH_x.json")
        report = {"schema": bench.BENCH_SCHEMA, "revision": "x",
                  "cells": {}}
        bench.write_report(report, path)
        assert bench.load_report(path)["revision"] == "x"

        def exploding_replace(_src, _dst):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError):
            bench.write_report({**report, "revision": "y"}, path)
        monkeypatch.undo()
        # The old, complete report survives the failed overwrite.
        assert bench.load_report(path)["revision"] == "x"
        assert tree(tmp_path) == [path]
