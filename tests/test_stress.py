"""Stress tests: adversarial interleavings with invariants checked live.

These runs combine every squash source at once — runahead entries/exits,
branch mispredictions inside and outside runahead mode, FP decode drops,
MSHR pressure, and multi-thread resource contention — and assert the
structural invariants (register conservation, map validity, ROB
accounting) continuously.
"""

import numpy as np
import pytest

from repro.core.dyninst import InstState
from repro.isa import OpClass

from repro.testing import SMALL_CONFIG, TraceBuilder, make_processor


def _chaos_trace(seed: int, length: int = 400) -> "TraceBuilder":
    """A trace mixing miss-heavy loads, branches and FP chains."""
    rng = np.random.default_rng(seed)
    builder = TraceBuilder(name=f"chaos{seed}", data_region=1 << 26)
    fp_live = False
    for index in range(length):
        draw = rng.random()
        if draw < 0.18:
            builder.load(9 + int(rng.integers(0, 8)),
                         int(rng.integers(0, 1 << 22)) & ~0x7)
        elif draw < 0.24:
            builder.store(int(rng.integers(0, 1 << 22)) & ~0x7,
                          src1=1 + int(rng.integers(0, 8)))
        elif draw < 0.36:
            builder.branch(taken=bool(rng.random() < 0.4),
                           src1=9 + int(rng.integers(0, 8)))
        elif draw < 0.48:
            if fp_live:
                builder.fadd(40 + int(rng.integers(0, 8)),
                             src1=40 + int(rng.integers(0, 8)))
            else:
                builder.fload(40 + int(rng.integers(0, 8)),
                              int(rng.integers(0, 1 << 22)) & ~0x7)
                fp_live = True
        else:
            builder.ialu(1 + int(rng.integers(0, 8)),
                         src1=1 + int(rng.integers(0, 8)))
    return builder


@pytest.mark.parametrize("policy", ["icount", "stall", "flush", "rat",
                                    "dcra", "hill", "mlp"])
def test_chaos_single_thread(policy):
    trace = _chaos_trace(3).build()
    cpu = make_processor([trace], policy=policy)
    for _ in range(60):
        cpu.step(25)
        cpu.pipeline.check_invariants()
        if cpu.pipeline.threads[0].finished_passes:
            break
    else:
        pytest.fail("no pass completed within the step budget")


@pytest.mark.parametrize("policy", ["rat", "flush"])
def test_chaos_two_threads(policy):
    traces = [_chaos_trace(5).build(), _chaos_trace(7).build()]
    cpu = make_processor(traces, policy=policy)
    for _ in range(120):
        cpu.step(25)
        cpu.pipeline.check_invariants()
        if all(t.finished_passes for t in cpu.pipeline.threads):
            break
    else:
        pytest.fail("workload did not finish")
    for thread in cpu.pipeline.threads:
        assert thread.stats.committed >= 400


def test_chaos_runahead_under_misprediction_pressure():
    """Mispredicted branches resolving during runahead must not corrupt
    rename state; every pass must still commit fully."""
    builder = TraceBuilder(data_region=1 << 26)
    for index in range(40):
        builder.load(9 + index % 4, 0x10000 * (index + 1))
        builder.branch(taken=index % 3 == 0, src1=1 + index % 4)
        builder.ialu(1 + index % 8, src1=1 + (index + 3) % 8)
        builder.nops(3)
    cpu = make_processor([builder.build()], policy="rat")
    result = cpu.run()
    cpu.pipeline.check_invariants()
    assert result.thread_stats[0].committed >= 240
    assert result.thread_stats[0].runahead_episodes > 0


def test_chaos_no_event_leak():
    """The event table must drain: no unbounded growth of stale events."""
    traces = [_chaos_trace(11).build()]
    cpu = make_processor(traces, policy="rat")
    cpu.run()
    pending = sum(len(bucket) for bucket in cpu.pipeline._events.values())
    # Only events scheduled beyond the final cycle may remain.
    assert pending < 2 * SMALL_CONFIG.memory_latency


def test_state_machine_sanity_after_run():
    """After a finished run, no instruction may linger in a transient
    state inside the issue queues."""
    cpu = make_processor([_chaos_trace(13).build()], policy="rat")
    cpu.run()
    for queue in cpu.pipeline.queues:
        for inst in queue._ready:
            assert inst.state in (InstState.READY, InstState.SQUASHED,
                                  InstState.COMPLETED, InstState.RETIRED)


def test_determinism_across_constructions():
    results = []
    for _ in range(2):
        cpu = make_processor([_chaos_trace(17).build()], policy="rat")
        result = cpu.run()
        results.append((result.cycles, tuple(result.ipcs),
                        result.total_executed))
    assert results[0] == results[1]
