"""Tests for ThreadContext."""

from repro.core.regfile import PhysRegFile
from repro.core.rename import RenameState
from repro.core.thread import (
    PASS_STRIDE_BYTES,
    ThreadContext,
    ThreadMode,
)

from repro.testing import TraceBuilder


def _thread(trace=None, pass_shift=True, tid=0):
    if trace is None:
        trace = (TraceBuilder().ialu(1).load(2, 64).branch(taken=True)
                 .build())
    int_file = PhysRegFile("int", 96)
    fp_file = PhysRegFile("fp", 96)
    rename = RenameState(tid, int_file, fp_file)
    return ThreadContext(tid, trace, rename, pass_shift=pass_shift)


class TestFetchCursor:
    def test_next_inst_advances(self):
        thread = _thread()
        first = thread.next_inst(gseq=0)
        second = thread.next_inst(gseq=1)
        assert first.trace_index == 0 and second.trace_index == 1
        assert second.seq == first.seq + 1

    def test_wraps_and_counts_pass(self):
        thread = _thread()
        for _ in range(3):
            thread.next_inst(0)
        assert thread.cursor == 0
        assert thread.pass_no == 1

    def test_rewind(self):
        thread = _thread()
        for _ in range(3):
            thread.next_inst(0)
        thread.rewind_to(1, 0)
        inst = thread.next_inst(0)
        assert inst.trace_index == 1 and inst.pass_no == 0

    def test_runahead_flag_propagates(self):
        thread = _thread()
        thread.mode = ThreadMode.RUNAHEAD
        assert thread.next_inst(0).runahead

    def test_memory_instruction_gets_physical_address(self):
        thread = _thread()
        thread.next_inst(0)
        load = thread.next_inst(0)
        assert load.addr == thread.data_base + 64


class TestAddressing:
    def test_threads_have_disjoint_segments(self):
        first = _thread(tid=0)
        second = _thread(tid=1)
        assert first.data_base != second.data_base
        assert first.code_offset != second.code_offset

    def test_pass_shift_moves_addresses(self):
        trace = TraceBuilder(data_region=1 << 24).load(2, 128).build()
        thread = _thread(trace)
        assert (thread.physical_addr(128, 1)
                == thread.data_base + (128 + PASS_STRIDE_BYTES) % (1 << 24))

    def test_pass_shift_disabled_for_cacheable_threads(self):
        trace = TraceBuilder(data_region=1 << 24).load(2, 128).build()
        thread = _thread(trace, pass_shift=False)
        assert thread.physical_addr(128, 5) == thread.physical_addr(128, 0)

    def test_shift_stays_in_region(self):
        trace = TraceBuilder(data_region=4096).load(2, 100).build()
        thread = _thread(trace)
        for pass_no in range(10):
            addr = thread.physical_addr(100, pass_no)
            assert thread.data_base <= addr < thread.data_base + 4096


class TestGating:
    def test_structural_block(self):
        thread = _thread()
        thread.block_fetch_until(10)
        assert not thread.can_fetch(9)
        assert thread.can_fetch(10)

    def test_policy_gate(self):
        thread = _thread()
        thread.gate_fetch_until(20)
        assert not thread.can_fetch(19)
        thread.ungate_fetch()
        assert thread.can_fetch(0)

    def test_blocks_only_extend(self):
        thread = _thread()
        thread.block_fetch_until(10)
        thread.block_fetch_until(5)
        assert thread.fetch_blocked_until == 10


class TestArchInvalid:
    def test_flag_roundtrip(self):
        thread = _thread()
        thread.note_arch_invalid(40, True)
        assert thread.arch_is_invalid(40)
        thread.note_arch_invalid(40, False)
        assert not thread.arch_is_invalid(40)

    def test_integer_regs_can_be_flagged(self):
        # INV recycling applies to both register classes.
        thread = _thread()
        thread.note_arch_invalid(5, True)
        assert thread.arch_is_invalid(5)
        assert not thread.arch_is_invalid(-1)

    def test_clear_all(self):
        thread = _thread()
        thread.note_arch_invalid(5, True)
        thread.note_arch_invalid(60, True)
        thread.clear_arch_invalid()
        assert not thread.arch_is_invalid(5)
        assert not thread.arch_is_invalid(60)


class TestNextInstMatchesPipelineInline:
    """``ThreadContext.next_inst`` is the readable reference for the
    fetch loop inlined into ``SMTPipeline._fetch_thread``; this pins the
    two copies together so an edit to either cannot silently diverge.
    """

    def test_inlined_fetch_loop_materializes_identical_instructions(self):
        from repro.config import baseline
        from repro.core.pipeline import SMTPipeline
        from repro.policies.registry import create_policy
        from repro.trace.generator import generate_trace

        config = baseline()
        make = lambda: [generate_trace("mcf", 300, 3)]
        pipeline = SMTPipeline(config, make(), create_policy("icount",
                                                             config))
        thread = pipeline.threads[0]
        # Step (cold icache: the first line fill takes a full memory
        # round trip) until the first fetch block lands, then stop —
        # the stream consumed so far is linear, since no misprediction
        # can have resolved and rewound the cursor yet.
        for _ in range(2_000):
            pipeline.step()
            if thread.stats.fetched:
                break
        fetched = sorted(
            [inst for inst in pipeline.rob._queues[0]]
            + list(thread.fetch_queue), key=lambda inst: inst.seq)
        assert fetched, "premise: nothing was fetched in 2000 cycles"

        reference = SMTPipeline(config, make(),
                                create_policy("icount", config))
        ref_thread = reference.threads[0]
        for got in fetched:
            want = ref_thread.next_inst(got.gseq)
            for field in ("tid", "seq", "gseq", "trace_index", "pass_no",
                          "op", "pc", "addr", "dest_arch", "src1_arch",
                          "src2_arch", "taken", "runahead", "is_load",
                          "is_store", "is_mem", "is_branch", "is_fp"):
                assert getattr(got, field) == getattr(want, field), (
                    f"inlined fetch loop diverged from next_inst on "
                    f"{field} at seq {got.seq}")
        assert ref_thread.cursor == thread.cursor
        assert ref_thread.pass_no == thread.pass_no
