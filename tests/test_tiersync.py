"""Tests for the tier-sync congruence engine and the guard-purity rule.

The acceptance criterion of the kernel-tier static gate: a semantic
one-line edit to a pipeline hot path (or to its emitter) that is not
mirrored on the other side must fail ``repro lint``, with a
normalized-AST diff naming both the source function and the emitter.
Seeded violations run against full copies of the real package — the
same trees the shipped FRAGMENTS table certifies — so the fixtures
drift together with the code they check.
"""

from __future__ import annotations

import ast
import json
import os
import shutil

import pytest

import repro
from repro.analysis import LintOptions, run_lint
from repro.analysis.astutil import iter_functions
from repro.analysis.cli import lint_main
from repro.analysis.hotpath import check_function

PACKAGE_ROOT = os.path.dirname(os.path.abspath(repro.__file__))

#: The hot-path functions the FRAGMENTS table must keep covered: the
#: four pipeline stages plus the macro layer and the event drain.  A
#: fragment removal that drops one of these is a gate regression, not a
#: declaration detail.
REQUIRED_COVERAGE = (
    "core/pipeline.py:SMTPipeline._process_events",
    "core/pipeline.py:SMTPipeline._commit_stage",
    "core/pipeline.py:SMTPipeline._commit_thread",
    "core/pipeline.py:SMTPipeline._issue_stage",
    "core/pipeline.py:SMTPipeline._issue_load",
    "core/pipeline.py:SMTPipeline._dispatch_stage",
    "core/pipeline.py:SMTPipeline._macro_dispatch",
    "core/pipeline.py:SMTPipeline._dispatch",
    "core/pipeline.py:SMTPipeline._fetch_stage",
    "core/pipeline.py:SMTPipeline._fetch_thread",
    "core/issue_queue.py:IssueQueue.take_ready",
)


@pytest.fixture()
def package_copy(tmp_path):
    copy_root = str(tmp_path / "repro")
    shutil.copytree(PACKAGE_ROOT, copy_root,
                    ignore=shutil.ignore_patterns("__pycache__"))
    return copy_root


def _edit(root, relpath, old, new):
    path = os.path.join(root, *relpath.split("/"))
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    assert old in text, f"{old!r} not found in {relpath}"
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text.replace(old, new, 1))


# ---------------------------------------------------------------------------
# The shipped declarations are congruent and cover what they claim.

def test_shipped_fragments_pass_tier_sync():
    report = run_lint(PACKAGE_ROOT, LintOptions(rules=["tier-sync"]))
    assert report.findings == [], \
        "\n".join(f.render() for f in report.findings)
    assert report.exit_code() == 0


def test_fragment_coverage_includes_every_stage():
    report = run_lint(PACKAGE_ROOT, LintOptions(rules=["tier-sync"]))
    coverage = report.fragment_coverage
    assert coverage is not None
    assert coverage["fragments"] >= 6
    for required in REQUIRED_COVERAGE:
        assert required in coverage["functions"], \
            f"fragment coverage lost {required}"


def test_fragment_coverage_counts_all_claimed_lines():
    # ``lines_covered`` must equal the full body span of every claimed
    # function — 100% of the claimed lines, recomputed here from the
    # real tree so the pin cannot drift silently.
    report = run_lint(PACKAGE_ROOT, LintOptions(rules=["tier-sync"]))
    coverage = report.fragment_coverage
    expected = 0
    trees = {}
    for entry in coverage["functions"]:
        relpath, qualname = entry.split(":", 1)
        if relpath not in trees:
            path = os.path.join(PACKAGE_ROOT, *relpath.split("/"))
            with open(path, "r", encoding="utf-8") as handle:
                trees[relpath] = ast.parse(handle.read())
        node = dict(iter_functions(trees[relpath]))[qualname]
        expected += (node.end_lineno or node.lineno) - node.lineno + 1
    assert coverage["lines_covered"] == expected
    assert expected > 500   # the hot tier is not a token sample


def test_guard_purity_clean_on_real_tree():
    report = run_lint(PACKAGE_ROOT, LintOptions(rules=["guard-purity"]))
    assert report.findings == [], \
        "\n".join(f.render() for f in report.findings)


# ---------------------------------------------------------------------------
# Seeded violations: each side of the mirror, edited alone, fails.

def test_source_edit_without_emitter_mirror_fails(package_copy):
    # One semantic line in the fetch hot loop (count += 1 -> += 2),
    # declared substitutions all still apply: the residual diff must
    # name both the source function and the emitter, with line anchors.
    _edit(package_copy, "core/pipeline.py",
          "            inst.counted = True\n"
          "            append(inst)\n"
          "            count += 1",
          "            inst.counted = True\n"
          "            append(inst)\n"
          "            count += 2")
    report = run_lint(package_copy, LintOptions(rules=["tier-sync"]))
    assert report.exit_code() == 1
    assert len(report.findings) == 1
    message = report.findings[0].message
    assert "core/pipeline.py:" in message and "_fetch_stage" in message
    assert "core/kernel_gen.py:" in message and "_emit_fetch" in message
    assert "--- " in message and "+++ " in message   # unified diff shown
    assert "count += 2" in message


def test_emitter_edit_without_source_mirror_fails(package_copy):
    _edit(package_copy, "core/kernel_gen.py",
          'emit("                fetched_total += count")',
          'emit("                fetched_total += count + 1")')
    report = run_lint(package_copy, LintOptions(rules=["tier-sync"]))
    assert report.exit_code() == 1
    message = report.findings[0].message
    assert "_fetch_stage" in message and "_emit_fetch" in message
    assert "fetched_total" in message


def test_undeclared_new_local_fails(package_copy):
    # A new statement in the source with no declared substitution: the
    # normalized forms differ by exactly the undeclared line.
    _edit(package_copy, "core/pipeline.py",
          "        count = 0\n"
          "        icache_done = now + self._icache_latency",
          "        count = 0\n"
          "        fetched_n = 0\n"
          "        icache_done = now + self._icache_latency")
    report = run_lint(package_copy, LintOptions(rules=["tier-sync"]))
    assert report.exit_code() == 1
    message = report.findings[0].message
    assert "residual structural difference" in message
    assert "fetched_n" in message


def test_mutation_hoisted_above_macro_guard_fails(package_copy):
    # The guard-purity contract: every entry guard holds before any
    # machine mutation.  Hoist one mutation above the plan guards.
    _edit(package_copy, "core/pipeline.py",
          "        start = fetch_queue[0].trace_index",
          "        start = fetch_queue[0].trace_index\n"
          "        thread.rob_held += 1")
    report = run_lint(package_copy, LintOptions(rules=["guard-purity"]))
    assert report.exit_code() == 1
    message = report.findings[0].message
    assert "thread.rob_held" in message
    assert "_macro_dispatch" in message
    assert "reachable before a macro-guard abort" in message


def test_side_effecting_skip_horizon_fails(package_copy):
    _edit(package_copy, "policies/dcra.py",
          "        remainder = now % self._interval",
          "        self._last_skip = now\n"
          "        remainder = now % self._interval")
    report = run_lint(package_copy, LintOptions(rules=["guard-purity"]))
    assert report.exit_code() == 1
    message = report.findings[0].message
    assert "self._last_skip" in message and "skip_horizon" in message
    assert "must be pure" in message


# ---------------------------------------------------------------------------
# Generated kernels ride through hot-path-hygiene.

def test_generated_kernels_pass_hot_path_hygiene():
    report = run_lint(PACKAGE_ROOT,
                      LintOptions(rules=["hot-path-hygiene"]))
    assert report.findings == [], \
        "\n".join(f.render() for f in report.findings)


def test_check_function_flags_kernel_style_violations():
    # The module-level checker used for generated source: a try block
    # and a twice-resolved loop-invariant chain are both findings; the
    # same chain on a base rebound inside the loop is not (the hoist
    # advice would be wrong — `file` names a new object per iteration).
    code = (
        "def kern(pipeline):\n"
        "    for inst in pipeline.window:\n"
        "        try:\n"
        "            a = pipeline.mem.table[inst.addr]\n"
        "        except KeyError:\n"
        "            a = None\n"
        "        b = pipeline.mem.table[0]\n"
        "        file = pipeline.files[inst.klass]\n"
        "        file._free.append(inst.old)\n"
        "        file._free.append(inst.dest)\n"
    )
    node = ast.parse(code).body[0]
    findings = check_function("hot-path-hygiene", "core/kernel_gen.py",
                              "generated kernel [test] kern", node)
    messages = [f.message for f in findings]
    assert any("try block" in m for m in messages)
    assert any("pipeline.mem.table" in m for m in messages)
    assert not any("file._free" in m for m in messages)


# ---------------------------------------------------------------------------
# CLI surface: unknown rules, re-pin reporting, JSON summary.

def test_unknown_rule_exits_2_and_lists_rules(capsys):
    assert lint_main(["--rules", "no-such-rule"]) == 2
    err = capsys.readouterr().err
    assert "unknown lint rule 'no-such-rule'" in err
    for name in ("tier-sync", "guard-purity", "hot-path-hygiene",
                 "salt-fingerprint"):
        assert name in err


def test_accept_fingerprints_names_repinned_modules(package_copy, capsys):
    # A semantic edit in exactly one salt-scoped module:
    _edit(package_copy, "core/fu.py",
          "def next_release_cycle(self, now: int) -> int:",
          "def next_release_cycle(self, now: int, _w: int = 0) -> int:")
    assert lint_main(["--root", package_copy, "--rules",
                      "salt-fingerprint", "--accept-fingerprints"]) == 0
    out = capsys.readouterr().out
    assert "re-pinned: core/fu.py" in out
    assert "(1 changed)" in out
    # The report object carries the same names for programmatic callers.
    report = run_lint(package_copy,
                      LintOptions(rules=["salt-fingerprint"],
                                  accept_fingerprints=True))
    assert report.repinned["changed"] == []


def test_json_summary_reports_rule_stats_and_coverage(capsys):
    assert lint_main(["--rules", "tier-sync,guard-purity",
                      "--format", "json"]) == 0
    document = json.loads(capsys.readouterr().out)
    summary = document["summary"]
    assert set(summary["rules"]) == {"tier-sync", "guard-purity"}
    for stats in summary["rules"].values():
        assert stats["findings"] == 0
        assert stats["seconds"] >= 0
    coverage = summary["fragment_coverage"]
    assert coverage["fragments"] >= 6
    assert coverage["lines_covered"] > 500
