"""Tests for the Trace container and TraceInstruction."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.isa import NO_REG, OpClass
from repro.trace.instruction import TraceInstruction
from repro.trace.trace import Trace


def _columns(count=4, **overrides):
    columns = {
        "op": np.full(count, int(OpClass.IALU), dtype=np.int8),
        "dest": np.full(count, 1, dtype=np.int16),
        "src1": np.full(count, NO_REG, dtype=np.int16),
        "src2": np.full(count, NO_REG, dtype=np.int16),
        "addr": np.zeros(count, dtype=np.int64),
        "taken": np.zeros(count, dtype=np.bool_),
        "pc": np.arange(0x1000, 0x1000 + 4 * count, 4, dtype=np.int64),
    }
    columns.update(overrides)
    return columns


class TestTraceConstruction:
    def test_length(self):
        trace = Trace("t", _columns(7))
        assert len(trace) == 7

    def test_missing_column_rejected(self):
        columns = _columns()
        del columns["addr"]
        with pytest.raises(TraceError):
            Trace("t", columns)

    def test_ragged_columns_rejected(self):
        columns = _columns()
        columns["addr"] = np.zeros(3, dtype=np.int64)
        with pytest.raises(TraceError):
            Trace("t", columns)

    def test_columns_are_read_only(self):
        trace = Trace("t", _columns())
        with pytest.raises(ValueError):
            trace.op[0] = 5

    def test_data_region_recorded(self):
        trace = Trace("t", _columns(), data_region_bytes=12345)
        assert trace.data_region_bytes == 12345


class TestTraceValidation:
    def test_valid_trace_passes(self):
        Trace("t", _columns()).validate()

    def test_bad_opcode_rejected(self):
        columns = _columns(op=np.full(4, 99, dtype=np.int8))
        with pytest.raises(TraceError):
            Trace("t", columns).validate()

    def test_out_of_range_register_rejected(self):
        columns = _columns(dest=np.full(4, 64, dtype=np.int16))
        with pytest.raises(TraceError):
            Trace("t", columns).validate()

    def test_negative_address_rejected(self):
        columns = _columns(op=np.full(4, int(OpClass.LOAD), dtype=np.int8),
                           addr=np.full(4, -8, dtype=np.int64))
        with pytest.raises(TraceError):
            Trace("t", columns).validate()

    def test_repeated_pc_rejected(self):
        columns = _columns(pc=np.full(4, 0x1000, dtype=np.int64))
        with pytest.raises(TraceError):
            Trace("t", columns).validate()


class TestTraceAccessors:
    def test_instruction_row_view(self):
        trace = Trace("t", _columns())
        inst = trace.instruction(2)
        assert isinstance(inst, TraceInstruction)
        assert inst.index == 2
        assert inst.op is OpClass.IALU
        assert inst.pc == 0x1008

    def test_negative_index(self):
        trace = Trace("t", _columns(5))
        assert trace.instruction(-1).index == 4

    def test_out_of_range_index(self):
        trace = Trace("t", _columns(5))
        with pytest.raises(IndexError):
            trace.instruction(5)

    def test_iteration_yields_all(self):
        trace = Trace("t", _columns(6))
        assert [inst.index for inst in trace] == list(range(6))

    def test_mix_pure_alu(self):
        mix = Trace("t", _columns()).mix()
        assert mix["other"] == 1.0
        assert mix["load"] == 0.0

    def test_mix_with_loads(self):
        ops = np.array([int(OpClass.LOAD), int(OpClass.STORE),
                        int(OpClass.BRANCH), int(OpClass.FADD)],
                       dtype=np.int8)
        mix = Trace("t", _columns(op=ops)).mix()
        assert mix["load"] == pytest.approx(0.25)
        assert mix["store"] == pytest.approx(0.25)
        assert mix["branch"] == pytest.approx(0.25)
        assert mix["fp"] == pytest.approx(0.25)

    def test_code_footprint(self):
        trace = Trace("t", _columns(4))
        assert trace.code_footprint_bytes() == 16

    def test_data_footprint_counts_lines(self):
        ops = np.full(4, int(OpClass.LOAD), dtype=np.int8)
        addrs = np.array([0, 8, 64, 256], dtype=np.int64)
        trace = Trace("t", _columns(op=ops, addr=addrs))
        assert trace.data_footprint_bytes(64) == 3 * 64


class TestTraceInstruction:
    def test_memory_flags(self):
        inst = TraceInstruction(0, 0x100, OpClass.FLOAD, dest=33, addr=64)
        assert inst.is_memory and inst.is_load and not inst.is_store

    def test_branch_flags(self):
        inst = TraceInstruction(0, 0x100, OpClass.BRANCH, taken=True)
        assert inst.is_branch and not inst.is_memory

    def test_frozen(self):
        inst = TraceInstruction(0, 0x100, OpClass.IALU, dest=3)
        with pytest.raises(Exception):
            inst.dest = 4
