"""Tests for the CFG, address streams, profiles and the trace generator."""

import numpy as np
import pytest

from repro.errors import TraceError, UnknownBenchmarkError
from repro.isa import NO_REG, OpClass
from repro.trace.address_space import (
    PointerChaseStream,
    RandomStream,
    StreamMixer,
    StridedStream,
)
from repro.trace.cfg import CODE_SEGMENT_BASE, ControlFlowGraph
from repro.trace.generator import TraceGenerator, generate_trace
from repro.trace.profiles import (
    PROFILES,
    benchmark_names,
    get_profile,
    ilp_benchmarks,
    mem_benchmarks,
)


def _rng(seed=7):
    return np.random.default_rng(seed)


class TestControlFlowGraph:
    def test_blocks_laid_out_sequentially(self):
        cfg = ControlFlowGraph(_rng(), 20, 6, 0.6, 0.1, 5.0)
        pc = CODE_SEGMENT_BASE
        for block in cfg.blocks:
            assert block.start_pc == pc
            pc += block.length * 4
        assert cfg.code_bytes == pc - CODE_SEGMENT_BASE

    def test_minimum_block_length(self):
        cfg = ControlFlowGraph(_rng(), 50, 2, 0.6, 0.1, 5.0)
        assert min(block.length for block in cfg.blocks) >= 2

    def test_targets_in_range(self):
        cfg = ControlFlowGraph(_rng(), 30, 5, 0.5, 0.3, 5.0)
        for block in cfg.blocks:
            assert 0 <= block.taken_target < len(cfg)

    def test_biases_are_probabilities(self):
        cfg = ControlFlowGraph(_rng(), 30, 5, 0.5, 0.3, 5.0)
        for block in cfg.blocks:
            assert 0.0 <= block.taken_bias <= 1.0

    def test_walk_follows_taken_edge(self):
        cfg = ControlFlowGraph(_rng(), 10, 4, 0.6, 0.1, 5.0)
        block = cfg.blocks[0]
        taken, next_block = cfg.walk(_rng(1), block)
        expected = (block.taken_target if taken
                    else cfg.fallthrough(block))
        assert next_block.index == expected

    def test_rejects_single_block(self):
        with pytest.raises(ValueError):
            ControlFlowGraph(_rng(), 1, 4, 0.5, 0.1, 5.0)


class TestAddressStreams:
    def test_strided_advances_by_stride(self):
        stream = StridedStream(_rng(), 0, 1 << 20, 16, sweep_length=10 ** 9)
        first = stream.next_address()
        second = stream.next_address()
        assert second - first == 16

    def test_strided_wraps_region(self):
        stream = StridedStream(_rng(), 0, 256, 64, sweep_length=10 ** 9)
        addresses = {stream.next_address() for _ in range(32)}
        assert all(0 <= a < 256 for a in addresses)

    def test_random_stays_in_region(self):
        stream = RandomStream(_rng(), 0, 4096)
        for _ in range(100):
            assert 0 <= stream.next_address() < 4096

    def test_random_hot_concentration(self):
        stream = RandomStream(_rng(), 0, 1 << 24, hot_fraction=0.001,
                              hot_prob=1.0)
        addresses = [stream.next_address() for _ in range(200)]
        assert max(addresses) - min(addresses) <= (1 << 24) * 0.001 + 64

    def test_chase_node_aligned(self):
        stream = PointerChaseStream(_rng(), 0, 1 << 20, node_bytes=64)
        for _ in range(50):
            assert stream.next_address() % 64 == 0

    def test_chase_is_dependent(self):
        assert PointerChaseStream(_rng(), 0, 4096).dependent
        assert not RandomStream(_rng(), 0, 4096).dependent

    def test_hot_bytes_cap(self):
        stream = RandomStream(_rng(), 0, 1 << 26, hot_fraction=0.5,
                              hot_prob=1.0, hot_bytes_cap=4096)
        addresses = [stream.next_address() for _ in range(200)]
        assert max(addresses) - min(addresses) <= 4096 + 64

    def test_mixer_respects_zero_weight(self):
        only = StridedStream(_rng(), 0, 4096, 8)
        never = RandomStream(_rng(), 0, 4096)
        mixer = StreamMixer(_rng(), [only, never], [1.0, 0.0])
        assert all(mixer.pick() is only for _ in range(50))

    def test_mixer_rejects_bad_weights(self):
        stream = RandomStream(_rng(), 0, 4096)
        with pytest.raises(ValueError):
            StreamMixer(_rng(), [stream], [0.0])

    def test_streams_reject_empty_region(self):
        with pytest.raises(ValueError):
            StridedStream(_rng(), 0, 0, 8)


class TestProfiles:
    def test_all_24_benchmarks_present(self):
        assert len(PROFILES) == 24

    def test_groups_partition_benchmarks(self):
        ilp = set(ilp_benchmarks())
        mem = set(mem_benchmarks())
        assert ilp | mem == set(benchmark_names())
        assert not ilp & mem

    def test_expected_mem_members(self):
        mem = set(mem_benchmarks())
        assert {"mcf", "art", "swim", "twolf", "vpr", "equake",
                "lucas", "parser", "applu", "ammp"} == mem

    def test_unknown_benchmark_raises(self):
        with pytest.raises(UnknownBenchmarkError):
            get_profile("doom")

    def test_mem_working_sets_exceed_l2(self):
        for name in mem_benchmarks():
            assert get_profile(name).working_set_bytes > 1024 * 1024

    def test_ilp_working_sets_cacheable(self):
        for name in ilp_benchmarks():
            assert get_profile(name).working_set_bytes <= 768 * 1024

    def test_mix_fractions_leave_room_for_alu(self):
        for profile in PROFILES.values():
            total = (profile.load_fraction + profile.store_fraction
                     + profile.branch_fraction + profile.fp_fraction
                     + profile.imul_fraction)
            assert 0.0 < total < 1.0

    def test_fp_flag_consistency(self):
        assert get_profile("swim").is_fp
        assert not get_profile("mcf").is_fp
        for profile in PROFILES.values():
            if not profile.is_fp:
                assert profile.fp_fraction == 0.0


class TestGenerator:
    def test_deterministic(self):
        first = TraceGenerator(get_profile("gzip"), 2000, seed=3).generate()
        second = TraceGenerator(get_profile("gzip"), 2000, seed=3).generate()
        assert np.array_equal(first.op, second.op)
        assert np.array_equal(first.addr, second.addr)
        assert np.array_equal(first.pc, second.pc)

    def test_different_seeds_differ(self):
        first = TraceGenerator(get_profile("gzip"), 2000, seed=1).generate()
        second = TraceGenerator(get_profile("gzip"), 2000, seed=2).generate()
        assert not np.array_equal(first.addr, second.addr)

    def test_mix_converges_to_profile(self):
        profile = get_profile("mcf")
        trace = TraceGenerator(profile, 20000, seed=5).generate()
        mix = trace.mix()
        assert mix["load"] == pytest.approx(profile.load_fraction, abs=0.03)
        assert mix["store"] == pytest.approx(profile.store_fraction,
                                             abs=0.03)
        # Branch fraction is structural (block lengths), so it drifts
        # more than the per-visit drawn categories.
        assert mix["branch"] == pytest.approx(profile.branch_fraction,
                                              abs=0.06)

    def test_addresses_within_working_set(self):
        profile = get_profile("twolf")
        trace = TraceGenerator(profile, 5000, seed=1).generate()
        mem_mask = np.isin(trace.op, (int(OpClass.LOAD), int(OpClass.STORE),
                                      int(OpClass.FLOAD),
                                      int(OpClass.FSTORE)))
        assert trace.addr[mem_mask].max() < profile.working_set_bytes
        assert trace.data_region_bytes == profile.working_set_bytes

    def test_sources_reference_written_registers(self):
        trace = TraceGenerator(get_profile("gcc"), 5000, seed=2).generate()
        written = set()
        for inst in trace:
            for src in (inst.src1, inst.src2):
                if src != NO_REG:
                    assert src in written
            if inst.dest != NO_REG:
                written.add(inst.dest)

    def test_fp_suite_uses_fp_registers(self):
        trace = TraceGenerator(get_profile("swim"), 5000, seed=2).generate()
        fp_ops = np.isin(trace.op, (int(OpClass.FADD), int(OpClass.FMUL),
                                    int(OpClass.FDIV), int(OpClass.FLOAD)))
        dests = trace.dest[fp_ops]
        assert (dests[dests != NO_REG] >= 32).all()

    def test_int_suite_has_no_fp(self):
        trace = TraceGenerator(get_profile("mcf"), 5000, seed=2).generate()
        assert trace.mix()["fp"] == 0.0

    def test_rejects_zero_length(self):
        with pytest.raises(TraceError):
            TraceGenerator(get_profile("gzip"), 0)

    def test_generate_trace_memoizes(self):
        first = generate_trace("eon", 1000, 1)
        second = generate_trace("eon", 1000, 1)
        assert first is second

    def test_validates_generated_traces(self):
        for name in ("gzip", "swim", "mcf", "gcc"):
            generate_trace(name, 3000, 9).validate()

    def test_chase_loads_chain_through_registers(self):
        # mcf is chase-heavy: some loads must use a prior load's dest as
        # their address register.
        trace = TraceGenerator(get_profile("mcf"), 5000, seed=4).generate()
        load_dests = set()
        chained = 0
        for inst in trace:
            if inst.op is OpClass.LOAD:
                if inst.src1 in load_dests:
                    chained += 1
                load_dests.add(inst.dest)
        assert chained > 50
