"""Tests for the Table 2 workload definitions."""

import pytest

from repro.errors import UnknownWorkloadError
from repro.trace.profiles import get_profile
from repro.trace.workloads import (
    WORKLOAD_CLASSES,
    Workload,
    all_workloads,
    get_workloads,
    workload_class_names,
)


def test_six_classes_in_paper_order():
    assert workload_class_names() == (
        "ILP2", "MIX2", "MEM2", "ILP4", "MIX4", "MEM4")


@pytest.mark.parametrize("klass,count", [
    ("ILP2", 10), ("MIX2", 10), ("MEM2", 10),
    ("ILP4", 8), ("MIX4", 8), ("MEM4", 8),
])
def test_class_sizes(klass, count):
    assert len(get_workloads(klass)) == count


def test_total_of_54_workloads():
    assert len(all_workloads()) == 54


@pytest.mark.parametrize("klass,threads", [
    ("ILP2", 2), ("MIX2", 2), ("MEM2", 2),
    ("ILP4", 4), ("MIX4", 4), ("MEM4", 4),
])
def test_thread_counts(klass, threads):
    for workload in get_workloads(klass):
        assert workload.num_threads == threads


def test_ilp_classes_contain_only_ilp_benchmarks():
    for klass in ("ILP2", "ILP4"):
        for workload in get_workloads(klass):
            for name in workload.benchmarks:
                assert not get_profile(name).is_mem, (klass, name)


def test_mem_classes_contain_only_mem_benchmarks():
    for klass in ("MEM2", "MEM4"):
        for workload in get_workloads(klass):
            for name in workload.benchmarks:
                assert get_profile(name).is_mem, (klass, name)


def test_mix_classes_are_half_mem():
    for klass, expected in (("MIX2", 1), ("MIX4", 2)):
        for workload in get_workloads(klass):
            mem_count = sum(get_profile(name).is_mem
                            for name in workload.benchmarks)
            assert mem_count == expected, workload


def test_every_benchmark_has_a_profile():
    for workload in all_workloads():
        workload.profiles()  # raises if any is missing


def test_specific_table2_rows_transcribed():
    assert Workload("ILP2", ("apsi", "eon")) in get_workloads("ILP2")
    assert Workload("MEM2", ("twolf", "swim")) in get_workloads("MEM2")
    assert Workload("MIX4", ("ammp", "applu", "apsi", "eon")) \
        in get_workloads("MIX4")
    assert Workload("MEM4", ("swim", "applu", "art", "mcf")) \
        in get_workloads("MEM4")


def test_unknown_class_raises():
    with pytest.raises(UnknownWorkloadError):
        get_workloads("MEM8")


def test_workload_name_and_str():
    workload = Workload("MEM2", ("art", "mcf"))
    assert workload.name == "art,mcf"
    assert "MEM2" in str(workload)
